//! The flow statistics (FS) signature.
//!
//! Per application group: flow durations, byte and packet counts (from
//! `FlowRemoved` counters), and flow arrival rates, overall and per edge
//! (Section III-B).

use std::collections::{BTreeMap, HashMap};

use openflow::types::Timestamp;
use serde::{Deserialize, Serialize};

use crate::change::{Change, ChangeDirection, Component, Locus, SignatureKind};
use crate::groups::Edge;
use crate::ids::{EntityCatalog, IRecord};
use crate::records::FlowTuple;
use crate::signatures::{
    DiffCtx, Signature, SignatureBuilder, SignatureInputs, StabilityCtx, StabilityMask,
};
use crate::stats::MeanStd;

/// Per-edge flow statistics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EdgeStats {
    /// Number of flows observed on the edge.
    pub flow_count: usize,
    /// Byte-count summary over those flows.
    pub bytes: MeanStd,
    /// Flow-entry lifetime summary, seconds.
    pub duration_s: MeanStd,
}

/// The FS signature of one application group.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FlowStatsSig {
    /// Total flows in the group during the log window.
    pub flow_count: usize,
    /// Flow arrival rate, flows per second.
    pub flows_per_sec: f64,
    /// Byte counts over all group flows.
    pub bytes: MeanStd,
    /// Packet counts over all group flows.
    pub packets: MeanStd,
    /// Flow-entry lifetimes, seconds.
    pub duration_s: MeanStd,
    /// Per-edge breakdown.
    pub per_edge: BTreeMap<Edge, EdgeStats>,
}

/// One detected flow-statistics change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FsChange {
    /// Which metric shifted (`bytes`, `flow_rate`, `duration`).
    pub metric: String,
    /// The edge it shifted on (`None` = group-wide).
    pub edge: Option<Edge>,
    /// Reference value.
    pub reference: f64,
    /// Current value.
    pub current: f64,
    /// Relative change `|cur - ref| / max(|ref|, ε)`.
    pub rel_change: f64,
}

fn rel(reference: f64, current: f64) -> f64 {
    (current - reference).abs() / reference.abs().max(1e-9)
}

/// True when a byte-count mean moved both materially (> 5 % relative)
/// and significantly (> 5 baseline standard errors, with enough
/// samples). Catches gradual inflation — e.g. retransmissions under a
/// low loss rate — that stays below the coarse relative threshold.
fn bytes_shifted(reference: &MeanStd, current: &MeanStd) -> bool {
    if reference.n < 30 || current.n < 30 {
        return false;
    }
    let se = reference.std / (reference.n as f64).sqrt();
    let delta = (current.mean - reference.mean).abs();
    rel(reference.mean, current.mean) > 0.05 && delta > 5.0 * se
}

/// One record's contribution to FS, stored raw under its window key.
#[derive(Debug, Clone, Copy)]
struct FsSample {
    edge: u64,
    bytes: f64,
    packets: f64,
    duration_s: f64,
}

/// Incremental FS accumulator: raw byte/packet/duration samples keyed
/// by the window order `(first_seen, tuple)` — the same key the batch
/// path sorts records by — so `finalize` can walk them in sorted order
/// and run the summary math exactly as a batch build over the sorted
/// window would. Keyed storage is what makes [`FsBuilder::retire`]
/// exact: a retired record's samples are removed from the tail of its
/// key's list, leaving the survivors in sorted order. `MeanStd` over
/// f64 samples is order-sensitive, and bit-exact equality with the
/// batch build is part of the contract.
#[derive(Debug, Clone, Default)]
pub struct FsBuilder {
    span_s: f64,
    samples: BTreeMap<(Timestamp, FlowTuple), Vec<FsSample>>,
}

impl SignatureBuilder for FsBuilder {
    type Output = FlowStatsSig;

    fn observe(&mut self, record: &IRecord) {
        self.samples
            .entry((record.first_seen, record.tuple))
            .or_default()
            .push(FsSample {
                edge: record.edge_key(),
                bytes: record.byte_count as f64,
                packets: record.packet_count as f64,
                duration_s: record.duration_s,
            });
    }

    fn retire(&mut self, record: &IRecord) {
        let key = (record.first_seen, record.tuple);
        if let Some(list) = self.samples.get_mut(&key) {
            list.pop();
            if list.is_empty() {
                self.samples.remove(&key);
            }
        }
    }

    fn finalize(&self, catalog: &EntityCatalog) -> FlowStatsSig {
        let mut bytes = Vec::new();
        let mut packets = Vec::new();
        let mut durations = Vec::new();
        let mut per_edge: HashMap<u64, (usize, Vec<f64>, Vec<f64>)> = HashMap::new();
        for s in self.samples.values().flatten() {
            bytes.push(s.bytes);
            packets.push(s.packets);
            durations.push(s.duration_s);
            let entry = per_edge.entry(s.edge).or_default();
            entry.0 += 1;
            entry.1.push(s.bytes);
            entry.2.push(s.duration_s);
        }
        FlowStatsSig {
            flow_count: bytes.len(),
            flows_per_sec: bytes.len() as f64 / self.span_s,
            bytes: MeanStd::of(&bytes),
            packets: MeanStd::of(&packets),
            duration_s: MeanStd::of(&durations),
            per_edge: per_edge
                .iter()
                .map(|(&key, (n, b, d))| {
                    (
                        catalog.edge(key),
                        EdgeStats {
                            flow_count: *n,
                            bytes: MeanStd::of(b),
                            duration_s: MeanStd::of(d),
                        },
                    )
                })
                .collect(),
        }
    }
}

impl Signature for FlowStatsSig {
    type Change = FsChange;
    type Builder = FsBuilder;
    const KIND: SignatureKind = SignatureKind::Fs;

    fn builder(inputs: &SignatureInputs<'_>) -> FsBuilder {
        let span = inputs.span;
        FsBuilder {
            span_s: ((span.1.as_micros().saturating_sub(span.0.as_micros())) as f64 / 1e6)
                .max(1e-6),
            ..FsBuilder::default()
        }
    }

    /// Scalar comparison (Section IV-A): reports metrics whose relative
    /// change exceeds `config.fs_rel_change`, plus byte-count means that
    /// shifted significantly per the standard-error test above.
    fn diff(&self, current: &Self, ctx: &DiffCtx<'_>) -> Vec<FsChange> {
        fn push(out: &mut Vec<FsChange>, metric: &str, edge: Option<Edge>, a: f64, b: f64) {
            out.push(FsChange {
                metric: metric.to_owned(),
                edge,
                reference: a,
                current: b,
                rel_change: rel(a, b),
            });
        }
        let threshold = ctx.config.fs_rel_change;
        let mut out = Vec::new();
        if rel(self.flows_per_sec, current.flows_per_sec) > threshold {
            push(
                &mut out,
                "flow_rate",
                None,
                self.flows_per_sec,
                current.flows_per_sec,
            );
        }
        if rel(self.bytes.mean, current.bytes.mean) > threshold
            || bytes_shifted(&self.bytes, &current.bytes)
        {
            push(&mut out, "bytes", None, self.bytes.mean, current.bytes.mean);
        }
        if rel(self.duration_s.mean, current.duration_s.mean) > threshold {
            push(
                &mut out,
                "duration",
                None,
                self.duration_s.mean,
                current.duration_s.mean,
            );
        }
        for (edge, ref_stats) in &self.per_edge {
            if let Some(cur_stats) = current.per_edge.get(edge) {
                if rel(ref_stats.bytes.mean, cur_stats.bytes.mean) > threshold
                    || bytes_shifted(&ref_stats.bytes, &cur_stats.bytes)
                {
                    push(
                        &mut out,
                        "bytes",
                        Some(*edge),
                        ref_stats.bytes.mean,
                        cur_stats.bytes.mean,
                    );
                }
                if rel(ref_stats.flow_count as f64, cur_stats.flow_count as f64) > threshold {
                    push(
                        &mut out,
                        "flow_rate",
                        Some(*edge),
                        ref_stats.flow_count as f64,
                        cur_stats.flow_count as f64,
                    );
                }
            }
        }
        out
    }

    /// FS is accepted or rejected wholesale.
    fn locus(_change: &FsChange) -> Locus {
        Locus::Whole
    }

    fn render(change: &FsChange) -> Change {
        let mut components = Vec::new();
        if let Some(e) = change.edge {
            components.push(Component::Host(e.src));
            components.push(Component::Host(e.dst));
        }
        // Byte-count changes carry a qualitative direction: a collapse
        // means traffic disappeared (e.g. only SYN retries survive a
        // firewall); an inflation means extra wire bytes appeared
        // (retransmissions under loss).
        let collapsed = change.metric == "bytes" && change.current < change.reference * 0.3;
        let inflated = change.metric == "bytes" && change.current > change.reference * 1.2;
        Change {
            kind: Self::KIND,
            direction: if collapsed {
                ChangeDirection::Removed
            } else if inflated {
                ChangeDirection::Added
            } else {
                ChangeDirection::Shifted
            },
            description: format!(
                "{} changed {:.3} -> {:.3}{}",
                change.metric,
                change.reference,
                change.current,
                change.edge.map_or(String::new(), |e| format!(" on {e}"))
            ),
            components,
            ts: None,
        }
    }

    /// FS stability: the coefficient of variation of the interval mean
    /// byte counts must stay small across a quorum of active intervals.
    fn stability(&self, intervals: &[&Self], ctx: &StabilityCtx<'_>) -> StabilityMask {
        let byte_means: Vec<f64> = intervals
            .iter()
            .filter(|g| g.flow_count > 0)
            .map(|g| g.bytes.mean)
            .collect();
        let stable = if byte_means.len() >= ctx.quorum.min(2) {
            let s = MeanStd::of(&byte_means);
            s.mean > 0.0 && s.std / s.mean < 0.5
        } else {
            false
        };
        StabilityMask::whole(Self::KIND, stable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowDiffConfig;
    use crate::ids::{InternedLog, RecordIndex};
    use crate::records::{FlowRecord, FlowTuple};
    use openflow::types::{IpProto, Timestamp};
    use std::net::Ipv4Addr;

    fn record(src_last: u8, dst_last: u8, bytes: u64, at_s: u64) -> FlowRecord {
        FlowRecord {
            tuple: FlowTuple {
                src: Ipv4Addr::new(10, 0, 0, src_last),
                sport: 1000 + bytes as u16 % 1000,
                dst: Ipv4Addr::new(10, 0, 0, dst_last),
                dport: 80,
                proto: IpProto::TCP,
            },
            first_seen: Timestamp::from_secs(at_s),
            hops: vec![],
            byte_count: bytes,
            packet_count: bytes / 1500 + 1,
            duration_s: 5.0,
        }
    }

    fn span() -> (Timestamp, Timestamp) {
        (Timestamp::ZERO, Timestamp::from_secs(10))
    }

    fn build_fs(records: &[FlowRecord]) -> FlowStatsSig {
        let il = InternedLog::of(records);
        let config = FlowDiffConfig::default();
        FlowStatsSig::build(&SignatureInputs::new(
            &il.refs(),
            &il.catalog,
            span(),
            &config,
        ))
    }

    fn diff_fs(a: &FlowStatsSig, b: &FlowStatsSig, threshold: f64) -> Vec<FsChange> {
        let config = FlowDiffConfig {
            fs_rel_change: threshold,
            ..FlowDiffConfig::default()
        };
        let index = RecordIndex::default();
        a.diff(
            b,
            &DiffCtx {
                config: &config,
                records: &index,
            },
        )
    }

    #[test]
    fn build_summarizes_counts_and_rates() {
        let records = vec![
            record(1, 2, 1_000, 1),
            record(1, 2, 3_000, 2),
            record(2, 3, 2_000, 3),
        ];
        let fs = build_fs(&records);
        assert_eq!(fs.flow_count, 3);
        assert!((fs.flows_per_sec - 0.3).abs() < 1e-9);
        assert!((fs.bytes.mean - 2_000.0).abs() < 1e-9);
        assert_eq!(fs.per_edge.len(), 2);
        let e = Edge {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
        };
        assert_eq!(fs.per_edge[&e].flow_count, 2);
    }

    #[test]
    fn no_change_below_threshold() {
        let records = vec![record(1, 2, 1_000, 1), record(1, 2, 1_100, 2)];
        let fs1 = build_fs(&records);
        assert!(diff_fs(&fs1, &fs1, 0.5).is_empty());
    }

    #[test]
    fn byte_inflation_detected_on_edge() {
        let base = vec![record(1, 2, 1_000, 1), record(1, 2, 1_000, 2)];
        let loss = vec![record(1, 2, 2_500, 1), record(1, 2, 2_700, 2)];
        let fs1 = build_fs(&base);
        let fs2 = build_fs(&loss);
        let changes = diff_fs(&fs1, &fs2, 0.5);
        assert!(changes
            .iter()
            .any(|c| c.metric == "bytes" && c.edge.is_some()));
        assert!(changes
            .iter()
            .all(|c| c.metric != "flow_rate" || c.rel_change <= 0.5));
    }

    #[test]
    fn empty_group_yields_default_signature() {
        let fs = build_fs(&[]);
        assert_eq!(fs.flow_count, 0);
        assert_eq!(fs.bytes.n, 0);
        assert!(diff_fs(&fs, &fs, 0.1).is_empty());
    }

    #[test]
    fn flow_rate_collapse_detected() {
        let base: Vec<FlowRecord> = (0..10).map(|i| record(1, 2, 1_000, i)).collect();
        let quiet = vec![record(1, 2, 1_000, 1)];
        let fs1 = build_fs(&base);
        let fs2 = build_fs(&quiet);
        let changes = diff_fs(&fs1, &fs2, 0.5);
        assert!(changes.iter().any(|c| c.metric == "flow_rate"));
    }

    #[test]
    fn render_classifies_byte_collapse_and_inflation() {
        let collapse = FsChange {
            metric: "bytes".into(),
            edge: None,
            reference: 1_000.0,
            current: 100.0,
            rel_change: 0.9,
        };
        assert_eq!(
            FlowStatsSig::render(&collapse).direction,
            ChangeDirection::Removed
        );
        let inflation = FsChange {
            metric: "bytes".into(),
            edge: None,
            reference: 1_000.0,
            current: 2_500.0,
            rel_change: 1.5,
        };
        assert_eq!(
            FlowStatsSig::render(&inflation).direction,
            ChangeDirection::Added
        );
        let rate = FsChange {
            metric: "flow_rate".into(),
            edge: None,
            reference: 10.0,
            current: 1.0,
            rel_change: 0.9,
        };
        assert_eq!(
            FlowStatsSig::render(&rate).direction,
            ChangeDirection::Shifted
        );
    }
}
