//! The application and infrastructure signatures of Section III.
//!
//! Application signatures (per application group):
//! * [`connectivity`] — the connectivity graph (CG);
//! * [`flow_stats`] — flow statistics (FS);
//! * [`interaction`] — component interaction (CI);
//! * [`delay`] — delay distribution (DD);
//! * [`correlation`] — partial correlation (PC).
//!
//! Infrastructure signatures (whole data center): [`infra`] — physical
//! topology (PT), inter-switch latency (ISL), and controller response
//! time (CRT) — plus the [`utilization`] baseline (LU) from polled port
//! counters.
//!
//! All nine implement the [`Signature`] trait, which is the only
//! interface the model builder, stability analysis, diff engine, and
//! diagnosis layers use: build from [`SignatureInputs`], diff under a
//! [`DiffCtx`], judge stability into a [`StabilityMask`], and render
//! typed changes into the tagged [`Change`] vocabulary.

pub mod connectivity;
pub mod correlation;
pub mod delay;
pub mod flow_stats;
pub mod infra;
pub mod interaction;
pub mod utilization;

use std::collections::BTreeMap;

use openflow::types::Timestamp;
use serde::{Deserialize, Serialize};

use crate::change::{Change, Locus, SignatureKind};
use crate::config::FlowDiffConfig;
use crate::groups::AppGroup;
use crate::ids::{EntityCatalog, IRecord, RecordIndex};
use netsim::log::{ControlEvent, ControllerLog};

/// Everything a signature may need to build itself. Each signature picks
/// the fields it cares about: application signatures use the group and
/// its records, infrastructure signatures use all records, and LU reads
/// the raw log (port-stats replies never become flow records).
#[derive(Clone, Copy)]
pub struct SignatureInputs<'a> {
    /// The application group (application signatures only).
    pub group: Option<&'a AppGroup>,
    /// The records to build from: the group's records for application
    /// signatures, every record in the log for infrastructure ones.
    /// Already interned through `catalog`.
    pub records: &'a [&'a IRecord],
    /// The catalog the records were interned through. Builders resolve
    /// IDs back to addresses through it at `finalize` time.
    pub catalog: &'a EntityCatalog,
    /// The log's time window.
    pub span: (Timestamp, Timestamp),
    /// Thresholds and domain knowledge.
    pub config: &'a FlowDiffConfig,
    /// The raw controller log (LU only).
    pub log: Option<&'a ControllerLog>,
}

impl<'a> SignatureInputs<'a> {
    /// Inputs with records, their catalog, span, and config — the
    /// common case.
    pub fn new(
        records: &'a [&'a IRecord],
        catalog: &'a EntityCatalog,
        span: (Timestamp, Timestamp),
        config: &'a FlowDiffConfig,
    ) -> Self {
        SignatureInputs {
            group: None,
            records,
            catalog,
            span,
            config,
            log: None,
        }
    }

    /// Attaches the application group (builder style).
    #[must_use]
    pub fn with_group(mut self, group: &'a AppGroup) -> Self {
        self.group = Some(group);
        self
    }

    /// Attaches the raw controller log (builder style).
    #[must_use]
    pub fn with_log(mut self, log: &'a ControllerLog) -> Self {
        self.log = Some(log);
        self
    }
}

/// Context for diffing two signatures of the same kind.
#[derive(Clone, Copy)]
pub struct DiffCtx<'a> {
    /// Thresholds (χ², σ multiples, relative-change bounds, …).
    pub config: &'a FlowDiffConfig,
    /// An edge index over the current log's records. CG uses it to
    /// distinguish an edge that truly vanished from one that merely
    /// moved to another group, and to stamp new edges with their first
    /// appearance.
    pub records: &'a RecordIndex,
}

/// Context for judging one signature's stability across interval models.
#[derive(Clone, Copy)]
pub struct StabilityCtx<'a> {
    /// Thresholds shared with the diff stage.
    pub config: &'a FlowDiffConfig,
    /// Minimum number of agreeing intervals for a stability vote.
    pub quorum: usize,
}

/// The stability verdict for one signature of one group, at the
/// granularity the signature is judged at ([`Locus`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilityMask {
    /// The signature this mask gates.
    pub kind: SignatureKind,
    /// Whole-signature verdict. For per-locus kinds this is the
    /// conjunction of all locus verdicts.
    pub stable: bool,
    /// Per-locus verdicts (CI: per node; DD/PC: per edge pair). Empty
    /// for signatures judged wholesale.
    pub loci: BTreeMap<Locus, bool>,
}

impl StabilityMask {
    /// A mask passing everything (no stability evidence against it).
    pub fn all_stable(kind: SignatureKind) -> StabilityMask {
        StabilityMask {
            kind,
            stable: true,
            loci: BTreeMap::new(),
        }
    }

    /// A wholesale verdict with no per-locus detail.
    pub fn whole(kind: SignatureKind, stable: bool) -> StabilityMask {
        StabilityMask {
            kind,
            stable,
            loci: BTreeMap::new(),
        }
    }

    /// A per-locus verdict; the wholesale bit is the conjunction.
    pub fn per_locus(kind: SignatureKind, loci: BTreeMap<Locus, bool>) -> StabilityMask {
        StabilityMask {
            kind,
            stable: loci.values().all(|&s| s),
            loci,
        }
    }

    /// Whether a change at `locus` survives the gate. Unknown loci are
    /// rejected: no stability evidence means no diffing license.
    pub fn allows(&self, locus: &Locus) -> bool {
        match locus {
            Locus::Whole => self.stable,
            other => self.loci.get(other).copied().unwrap_or(false),
        }
    }
}

/// The incremental half of a signature: an accumulator that folds flow
/// records (and, for log-derived signatures, raw control events) one at
/// a time and can produce the finished signature at any point.
///
/// `finalize` borrows rather than consumes so a long-lived builder can
/// be snapshotted repeatedly at epoch boundaries. A builder must
/// accumulate *raw samples* in observation order and run the summary
/// math (means, histogram peaks, correlations) only in `finalize`:
/// f64 accumulation is order-sensitive, and bit-exact equality with the
/// batch build is part of the contract.
///
/// Builders speak dense IDs: they fold [`IRecord`]s and key their
/// accumulators by packed `u32` IDs; only `finalize` resolves IDs back
/// to addresses (through the catalog the records were interned with)
/// when it lays out the finished, serializable signature.
pub trait SignatureBuilder {
    /// The finished signature this builder produces.
    type Output;

    /// Folds one interned flow record into the accumulator.
    fn observe(&mut self, record: &IRecord);

    /// Folds one raw control event. Only signatures built from the log
    /// itself (LU reads port-stats replies) override this; the default
    /// ignores events.
    fn observe_event(&mut self, _event: &ControlEvent) {}

    /// Removes one previously observed record from the accumulator — the
    /// exact inverse of [`SignatureBuilder::observe`], used to slide the
    /// online window forward without rebuilding from scratch.
    ///
    /// Contract: after any interleaving of observes and retires, the
    /// builder's `finalize` output must be byte-identical to a fresh
    /// builder fed only the surviving records in `(first_seen, tuple)`
    /// order. Records sharing a `(first_seen, tuple)` key must be
    /// retired newest-first (reverse observation order), so builders
    /// that keep per-key sample lists can pop from the tail.
    ///
    /// Event-fed builders (LU) ignore record retirement; they expire
    /// state by timestamp instead.
    fn retire(&mut self, record: &IRecord);

    /// Produces the signature from everything observed so far,
    /// resolving entity IDs back to addresses through `catalog`.
    fn finalize(&self, catalog: &EntityCatalog) -> Self::Output;
}

/// The uniform interface of the nine FlowDiff signatures.
///
/// A signature is a pure function of a log window ([`Self::build`]) that
/// can be compared against another instance of itself ([`Self::diff`]),
/// judged for stability across log intervals ([`Self::stability`]), and
/// rendered into the shared [`Change`] vocabulary ([`Self::render`]).
/// The provided [`Self::tagged_diff`] composes diff → stability gate →
/// render, which is the only path the diff engine uses.
///
/// Construction is incremental-first: every signature supplies a
/// [`SignatureBuilder`] via [`Self::builder`], and the provided
/// [`Self::build`] is a thin fold over it — there is exactly one
/// implementation of each signature's construction, shared by the batch
/// and streaming paths.
pub trait Signature: Sized {
    /// The signature's typed change (e.g. a peak shift, an edge delta).
    type Change;

    /// The signature's incremental builder.
    type Builder: SignatureBuilder<Output = Self>;

    /// The kind tag attached to rendered changes.
    const KIND: SignatureKind;

    /// Creates an empty builder configured from the inputs (thresholds,
    /// span, group context — everything except the records themselves).
    fn builder(inputs: &SignatureInputs<'_>) -> Self::Builder;

    /// Builds the signature from a log window: folds every event and
    /// record of the window through [`Self::builder`].
    fn build(inputs: &SignatureInputs<'_>) -> Self {
        let mut b = Self::builder(inputs);
        if let Some(log) = inputs.log {
            for ev in log.events() {
                b.observe_event(ev);
            }
        }
        for r in inputs.records {
            b.observe(r);
        }
        b.finalize(inputs.catalog)
    }

    /// Compares `self` (the reference) against `current`.
    fn diff(&self, current: &Self, ctx: &DiffCtx<'_>) -> Vec<Self::Change>;

    /// Where a change applies, for stability gating.
    fn locus(change: &Self::Change) -> Locus;

    /// Renders a typed change into the tagged vocabulary.
    fn render(change: &Self::Change) -> Change;

    /// A mask marking every locus of this signature stable (used when no
    /// stability pass was run). Per-locus signatures override this to
    /// enumerate their loci.
    fn stable_mask(&self) -> StabilityMask {
        StabilityMask::all_stable(Self::KIND)
    }

    /// Judges stability of `self` (built from the full log) against the
    /// per-interval rebuilds. Infrastructure signatures keep the default
    /// — they are statistical summaries already gated by `min_samples`.
    fn stability(&self, _intervals: &[&Self], _ctx: &StabilityCtx<'_>) -> StabilityMask {
        self.stable_mask()
    }

    /// Diff, gate each change through the stability mask, and render the
    /// survivors.
    fn tagged_diff(&self, current: &Self, ctx: &DiffCtx<'_>, mask: &StabilityMask) -> Vec<Change> {
        self.diff(current, ctx)
            .into_iter()
            .filter(|ch| mask.allows(&Self::locus(ch)))
            .map(|ch| Self::render(&ch))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn whole_mask_gates_whole_locus() {
        let stable = StabilityMask::whole(SignatureKind::Cg, true);
        let unstable = StabilityMask::whole(SignatureKind::Cg, false);
        assert!(stable.allows(&Locus::Whole));
        assert!(!unstable.allows(&Locus::Whole));
    }

    #[test]
    fn per_locus_mask_rejects_unknown_loci() {
        let node = Locus::Node(Ipv4Addr::new(10, 0, 0, 1));
        let other = Locus::Node(Ipv4Addr::new(10, 0, 0, 2));
        let mask =
            StabilityMask::per_locus(SignatureKind::Ci, [(node, true)].into_iter().collect());
        assert!(mask.allows(&node));
        assert!(!mask.allows(&other), "no evidence, no license");
        assert!(mask.stable);
    }

    #[test]
    fn per_locus_conjunction_sets_whole_bit() {
        let a = Locus::Node(Ipv4Addr::new(10, 0, 0, 1));
        let b = Locus::Node(Ipv4Addr::new(10, 0, 0, 2));
        let mask = StabilityMask::per_locus(
            SignatureKind::Ci,
            [(a, true), (b, false)].into_iter().collect(),
        );
        assert!(!mask.stable);
        assert!(mask.allows(&a));
        assert!(!mask.allows(&b));
    }
}
