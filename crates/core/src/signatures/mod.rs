//! The application and infrastructure signatures of Section III.
//!
//! Application signatures (per application group):
//! * [`connectivity`] — the connectivity graph (CG);
//! * [`flow_stats`] — flow statistics (FS);
//! * [`interaction`] — component interaction (CI);
//! * [`delay`] — delay distribution (DD);
//! * [`correlation`] — partial correlation (PC).
//!
//! Infrastructure signatures (whole data center): [`infra`] — physical
//! topology (PT), inter-switch latency (ISL), and controller response
//! time (CRT) — plus the [`utilization`] baseline (LU) from polled port
//! counters.

pub mod connectivity;
pub mod correlation;
pub mod delay;
pub mod flow_stats;
pub mod infra;
pub mod interaction;
pub mod utilization;
