//! The component interaction (CI) signature.
//!
//! At each application node, the number of flows on each incoming and
//! outgoing edge, normalized by the node's total (Section III-B).
//! Compared across logs with a χ² fitness test on the flow-count
//! distributions (Section IV-A).

use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::change::{Change, ChangeDirection, Component, Locus, SignatureKind};
use crate::groups::Edge;
use crate::ids::{EntityCatalog, IRecord};
use crate::signatures::{
    DiffCtx, Signature, SignatureBuilder, SignatureInputs, StabilityCtx, StabilityMask,
};
use crate::stats::chi_squared;

/// Flow counts on the edges incident to one node.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NodeInteraction {
    /// Per-incident-edge flow counts (directed edges; incoming edges have
    /// `dst == node`, outgoing have `src == node`).
    pub edge_counts: BTreeMap<Edge, u64>,
}

impl NodeInteraction {
    /// Total flows through the node.
    pub fn total(&self) -> u64 {
        self.edge_counts.values().sum()
    }

    /// Normalized frequency of each edge (fractions summing to 1).
    pub fn normalized(&self) -> BTreeMap<Edge, f64> {
        let total = self.total() as f64;
        self.edge_counts
            .iter()
            .map(|(e, c)| (*e, if total > 0.0 { *c as f64 / total } else { 0.0 }))
            .collect()
    }
}

/// The CI signature of one application group.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ComponentInteraction {
    /// Per-node interaction profiles.
    pub per_node: BTreeMap<Ipv4Addr, NodeInteraction>,
}

/// A node whose interaction distribution shifted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CiChange {
    /// The node.
    pub node: Ipv4Addr,
    /// The χ² statistic of the shift.
    pub chi2: f64,
}

/// Incremental CI accumulator: one packed-edge flow counter; the
/// per-node fan-out (each edge counted under both endpoints) happens at
/// `finalize`, where IDs resolve back to addresses.
#[derive(Debug, Clone, Default)]
pub struct CiBuilder {
    edge_counts: HashMap<u64, u64>,
}

impl SignatureBuilder for CiBuilder {
    type Output = ComponentInteraction;

    fn observe(&mut self, record: &IRecord) {
        *self.edge_counts.entry(record.edge_key()).or_insert(0) += 1;
    }

    fn retire(&mut self, record: &IRecord) {
        if let Some(count) = self.edge_counts.get_mut(&record.edge_key()) {
            *count -= 1;
            if *count == 0 {
                self.edge_counts.remove(&record.edge_key());
            }
        }
    }

    fn finalize(&self, catalog: &EntityCatalog) -> ComponentInteraction {
        let mut per_node: BTreeMap<Ipv4Addr, NodeInteraction> = BTreeMap::new();
        for (&key, &count) in &self.edge_counts {
            let edge = catalog.edge(key);
            // Count the edge under both endpoints; a self-edge counts
            // twice under its single node, as it always has.
            for node in [edge.src, edge.dst] {
                *per_node
                    .entry(node)
                    .or_default()
                    .edge_counts
                    .entry(edge)
                    .or_insert(0) += count;
            }
        }
        ComponentInteraction { per_node }
    }
}

impl Signature for ComponentInteraction {
    type Change = CiChange;
    type Builder = CiBuilder;
    const KIND: SignatureKind = SignatureKind::Ci;

    fn builder(_inputs: &SignatureInputs<'_>) -> CiBuilder {
        CiBuilder::default()
    }

    /// χ² fitness test per node (Section IV-A). Nodes present in only
    /// one log are skipped; the CG diff covers new/removed nodes more
    /// precisely.
    fn diff(&self, current: &Self, ctx: &DiffCtx<'_>) -> Vec<CiChange> {
        let mut out = Vec::new();
        for node in self.per_node.keys() {
            // `node_chi2` returns None for nodes missing on either side;
            // the CG diff covers those more precisely, and a profile
            // damaged by hostile input must degrade, not abort the diff.
            let Some(chi2) = node_chi2(self, current, *node) else {
                continue;
            };
            if chi2 > ctx.config.chi2_threshold {
                out.push(CiChange { node: *node, chi2 });
            }
        }
        out.sort_by(|a, b| b.chi2.total_cmp(&a.chi2));
        out
    }

    /// CI is gated per application node.
    fn locus(change: &CiChange) -> Locus {
        Locus::Node(change.node)
    }

    fn render(change: &CiChange) -> Change {
        Change {
            kind: Self::KIND,
            direction: ChangeDirection::Shifted,
            description: format!(
                "interaction shift at {} (chi2 {:.2})",
                change.node, change.chi2
            ),
            components: vec![Component::Host(change.node)],
            ts: None,
        }
    }

    fn stable_mask(&self) -> StabilityMask {
        StabilityMask::per_locus(
            Self::KIND,
            self.per_node
                .keys()
                .map(|ip| (Locus::Node(*ip), true))
                .collect(),
        )
    }

    /// CI stability per node: a quorum of intervals must fit the
    /// full-log profile (χ² below the alarm threshold). Nodes with
    /// non-linear decision logic, e.g. skewed load balancing, come out
    /// unstable.
    fn stability(&self, intervals: &[&Self], ctx: &StabilityCtx<'_>) -> StabilityMask {
        let loci = self
            .per_node
            .keys()
            .map(|node| {
                let votes = intervals
                    .iter()
                    .filter(|g| {
                        node_chi2(self, g, *node).is_some_and(|c| c < ctx.config.chi2_threshold)
                    })
                    .count();
                (Locus::Node(*node), votes >= ctx.quorum)
            })
            .collect();
        StabilityMask::per_locus(Self::KIND, loci)
    }
}

/// The χ² statistic for a single node across two CIs (used by the
/// per-node diff and stability votes, and by the robustness experiments
/// of Figure 12).
pub fn node_chi2(
    reference: &ComponentInteraction,
    current: &ComponentInteraction,
    node: Ipv4Addr,
) -> Option<f64> {
    let r = reference.per_node.get(&node)?;
    let c = current.per_node.get(&node)?;
    let edges: Vec<Edge> = r
        .edge_counts
        .keys()
        .chain(c.edge_counts.keys())
        .copied()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let expected: Vec<f64> = edges
        .iter()
        .map(|e| *r.edge_counts.get(e).unwrap_or(&0) as f64)
        .collect();
    let observed: Vec<f64> = edges
        .iter()
        .map(|e| *c.edge_counts.get(e).unwrap_or(&0) as f64)
        .collect();
    Some(chi_squared(&observed, &expected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowDiffConfig;
    use crate::ids::{InternedLog, RecordIndex};
    use crate::records::{FlowRecord, FlowTuple};
    use openflow::types::{IpProto, Timestamp};

    fn ip(x: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, x)
    }

    fn records(counts: &[(u8, u8, usize)]) -> Vec<FlowRecord> {
        let mut out = Vec::new();
        for &(s, d, n) in counts {
            for i in 0..n {
                out.push(FlowRecord {
                    tuple: FlowTuple {
                        src: ip(s),
                        sport: 1000 + i as u16,
                        dst: ip(d),
                        dport: 80,
                        proto: IpProto::TCP,
                    },
                    first_seen: Timestamp::from_secs(i as u64),
                    hops: vec![],
                    byte_count: 100,
                    packet_count: 1,
                    duration_s: 1.0,
                });
            }
        }
        out
    }

    fn build_ci(rs: &[FlowRecord]) -> ComponentInteraction {
        let il = InternedLog::of(rs);
        let config = FlowDiffConfig::default();
        ComponentInteraction::build(&SignatureInputs::new(
            &il.refs(),
            &il.catalog,
            (Timestamp::ZERO, Timestamp::ZERO),
            &config,
        ))
    }

    fn diff_ci(a: &ComponentInteraction, b: &ComponentInteraction) -> Vec<CiChange> {
        let config = FlowDiffConfig::default();
        let index = RecordIndex::default();
        a.diff(
            b,
            &DiffCtx {
                config: &config,
                records: &index,
            },
        )
    }

    #[test]
    fn build_counts_in_and_out_edges() {
        let ci = build_ci(&records(&[(1, 2, 10), (2, 3, 8)]));
        let n2 = &ci.per_node[&ip(2)];
        assert_eq!(n2.total(), 18);
        let norm = n2.normalized();
        let in_edge = Edge {
            src: ip(1),
            dst: ip(2),
        };
        let out_edge = Edge {
            src: ip(2),
            dst: ip(3),
        };
        assert!((norm[&in_edge] - 10.0 / 18.0).abs() < 1e-12);
        assert!((norm[&out_edge] - 8.0 / 18.0).abs() < 1e-12);
    }

    #[test]
    fn same_shape_different_volume_not_flagged() {
        let ci_a = build_ci(&records(&[(1, 2, 10), (2, 3, 10)]));
        let ci_b = build_ci(&records(&[(1, 2, 50), (2, 3, 50)]));
        assert!(diff_ci(&ci_a, &ci_b).is_empty());
    }

    #[test]
    fn skewed_distribution_flagged() {
        let ci_a = build_ci(&records(&[(1, 2, 50), (2, 3, 50)]));
        // node 2 stops forwarding most requests
        let ci_b = build_ci(&records(&[(1, 2, 50), (2, 3, 5)]));
        let changes = diff_ci(&ci_a, &ci_b);
        assert!(changes.iter().any(|c| c.node == ip(2)));
        // results sorted by severity
        assert!(changes.windows(2).all(|w| w[0].chi2 >= w[1].chi2));
    }

    #[test]
    fn node_chi2_zero_for_identical() {
        let ci = build_ci(&records(&[(1, 2, 10), (2, 3, 10)]));
        assert!(node_chi2(&ci, &ci, ip(2)).unwrap() < 1e-9);
        assert!(node_chi2(&ci, &ci, ip(99)).is_none());
    }

    #[test]
    fn missing_node_in_current_is_skipped() {
        let ci_a = build_ci(&records(&[(1, 2, 10)]));
        let ci_b = build_ci(&records(&[(3, 4, 10)]));
        // CG diff owns missing-node reporting; CI diff must not panic.
        assert!(diff_ci(&ci_a, &ci_b).is_empty());
    }

    #[test]
    fn empty_interaction_normalizes_to_empty() {
        let ni = NodeInteraction::default();
        assert_eq!(ni.total(), 0);
        assert!(ni.normalized().is_empty());
    }

    #[test]
    fn per_node_mask_gates_only_unstable_nodes() {
        let ci_a = build_ci(&records(&[(1, 2, 50), (2, 3, 50)]));
        let ci_b = build_ci(&records(&[(1, 2, 50), (2, 3, 5)]));
        let config = FlowDiffConfig::default();
        let index = RecordIndex::default();
        let ctx = DiffCtx {
            config: &config,
            records: &index,
        };
        // All shifted nodes stable: every change survives.
        let all = ci_a.tagged_diff(&ci_b, &ctx, &ci_a.stable_mask());
        assert!(!all.is_empty());
        // Mark node 2 unstable: its change is filtered out.
        let mut mask = ci_a.stable_mask();
        mask.loci.insert(Locus::Node(ip(2)), false);
        let gated = ci_a.tagged_diff(&ci_b, &ctx, &mask);
        assert!(gated.len() < all.len());
        assert!(gated
            .iter()
            .all(|c| c.components != vec![Component::Host(ip(2))]));
    }
}
