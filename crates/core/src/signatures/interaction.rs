//! The component interaction (CI) signature.
//!
//! At each application node, the number of flows on each incoming and
//! outgoing edge, normalized by the node's total (Section III-B).
//! Compared across logs with a χ² fitness test on the flow-count
//! distributions (Section IV-A).

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::groups::Edge;
use crate::records::FlowRecord;
use crate::stats::chi_squared;

/// Flow counts on the edges incident to one node.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NodeInteraction {
    /// Per-incident-edge flow counts (directed edges; incoming edges have
    /// `dst == node`, outgoing have `src == node`).
    pub edge_counts: BTreeMap<Edge, u64>,
}

impl NodeInteraction {
    /// Total flows through the node.
    pub fn total(&self) -> u64 {
        self.edge_counts.values().sum()
    }

    /// Normalized frequency of each edge (fractions summing to 1).
    pub fn normalized(&self) -> BTreeMap<Edge, f64> {
        let total = self.total() as f64;
        self.edge_counts
            .iter()
            .map(|(e, c)| (*e, if total > 0.0 { *c as f64 / total } else { 0.0 }))
            .collect()
    }
}

/// The CI signature of one application group.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ComponentInteraction {
    /// Per-node interaction profiles.
    pub per_node: BTreeMap<Ipv4Addr, NodeInteraction>,
}

/// Builds the CI signature from a group's records.
pub fn build(records: &[&FlowRecord]) -> ComponentInteraction {
    let mut per_node: BTreeMap<Ipv4Addr, NodeInteraction> = BTreeMap::new();
    for r in records {
        let edge = Edge {
            src: r.tuple.src,
            dst: r.tuple.dst,
        };
        for node in [r.tuple.src, r.tuple.dst] {
            *per_node
                .entry(node)
                .or_default()
                .edge_counts
                .entry(edge)
                .or_insert(0) += 1;
        }
    }
    ComponentInteraction { per_node }
}

/// A node whose interaction distribution shifted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CiChange {
    /// The node.
    pub node: Ipv4Addr,
    /// The χ² statistic of the shift.
    pub chi2: f64,
}

/// χ² fitness test per node (Section IV-A). Nodes present in only one
/// log are reported with an infinite-equivalent χ² (`f64::MAX`) only if
/// they carry flows; the CG diff covers new/removed nodes more precisely.
pub fn diff(
    reference: &ComponentInteraction,
    current: &ComponentInteraction,
    threshold: f64,
) -> Vec<CiChange> {
    let mut out = Vec::new();
    for (node, ref_ni) in &reference.per_node {
        let Some(cur_ni) = current.per_node.get(node) else {
            continue;
        };
        // Union of edges, in stable order.
        let edges: Vec<Edge> = ref_ni
            .edge_counts
            .keys()
            .chain(cur_ni.edge_counts.keys())
            .copied()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let expected: Vec<f64> = edges
            .iter()
            .map(|e| *ref_ni.edge_counts.get(e).unwrap_or(&0) as f64)
            .collect();
        let observed: Vec<f64> = edges
            .iter()
            .map(|e| *cur_ni.edge_counts.get(e).unwrap_or(&0) as f64)
            .collect();
        let chi2 = chi_squared(&observed, &expected);
        if chi2 > threshold {
            out.push(CiChange { node: *node, chi2 });
        }
    }
    out.sort_by(|a, b| b.chi2.total_cmp(&a.chi2));
    out
}

/// The χ² statistic for a single node across two CIs (used by the
/// robustness experiments of Figure 12).
pub fn node_chi2(
    reference: &ComponentInteraction,
    current: &ComponentInteraction,
    node: Ipv4Addr,
) -> Option<f64> {
    let r = reference.per_node.get(&node)?;
    let c = current.per_node.get(&node)?;
    let edges: Vec<Edge> = r
        .edge_counts
        .keys()
        .chain(c.edge_counts.keys())
        .copied()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let expected: Vec<f64> = edges
        .iter()
        .map(|e| *r.edge_counts.get(e).unwrap_or(&0) as f64)
        .collect();
    let observed: Vec<f64> = edges
        .iter()
        .map(|e| *c.edge_counts.get(e).unwrap_or(&0) as f64)
        .collect();
    Some(chi_squared(&observed, &expected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::FlowTuple;
    use openflow::types::{IpProto, Timestamp};

    fn ip(x: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, x)
    }

    fn records(counts: &[(u8, u8, usize)]) -> Vec<FlowRecord> {
        let mut out = Vec::new();
        for &(s, d, n) in counts {
            for i in 0..n {
                out.push(FlowRecord {
                    tuple: FlowTuple {
                        src: ip(s),
                        sport: 1000 + i as u16,
                        dst: ip(d),
                        dport: 80,
                        proto: IpProto::TCP,
                    },
                    first_seen: Timestamp::from_secs(i as u64),
                    hops: vec![],
                    byte_count: 100,
                    packet_count: 1,
                    duration_s: 1.0,
                });
            }
        }
        out
    }

    #[test]
    fn build_counts_in_and_out_edges() {
        let rs = records(&[(1, 2, 10), (2, 3, 8)]);
        let refs: Vec<&FlowRecord> = rs.iter().collect();
        let ci = build(&refs);
        let n2 = &ci.per_node[&ip(2)];
        assert_eq!(n2.total(), 18);
        let norm = n2.normalized();
        let in_edge = Edge { src: ip(1), dst: ip(2) };
        let out_edge = Edge { src: ip(2), dst: ip(3) };
        assert!((norm[&in_edge] - 10.0 / 18.0).abs() < 1e-12);
        assert!((norm[&out_edge] - 8.0 / 18.0).abs() < 1e-12);
    }

    #[test]
    fn same_shape_different_volume_not_flagged() {
        let a = records(&[(1, 2, 10), (2, 3, 10)]);
        let b = records(&[(1, 2, 50), (2, 3, 50)]);
        let ci_a = build(&a.iter().collect::<Vec<_>>());
        let ci_b = build(&b.iter().collect::<Vec<_>>());
        assert!(diff(&ci_a, &ci_b, 3.84).is_empty());
    }

    #[test]
    fn skewed_distribution_flagged() {
        let a = records(&[(1, 2, 50), (2, 3, 50)]);
        // node 2 stops forwarding most requests
        let b = records(&[(1, 2, 50), (2, 3, 5)]);
        let ci_a = build(&a.iter().collect::<Vec<_>>());
        let ci_b = build(&b.iter().collect::<Vec<_>>());
        let changes = diff(&ci_a, &ci_b, 3.84);
        assert!(changes.iter().any(|c| c.node == ip(2)));
        // results sorted by severity
        assert!(changes.windows(2).all(|w| w[0].chi2 >= w[1].chi2));
    }

    #[test]
    fn node_chi2_zero_for_identical() {
        let a = records(&[(1, 2, 10), (2, 3, 10)]);
        let ci = build(&a.iter().collect::<Vec<_>>());
        assert!(node_chi2(&ci, &ci, ip(2)).unwrap() < 1e-9);
        assert!(node_chi2(&ci, &ci, ip(99)).is_none());
    }

    #[test]
    fn missing_node_in_current_is_skipped() {
        let a = records(&[(1, 2, 10)]);
        let b = records(&[(3, 4, 10)]);
        let ci_a = build(&a.iter().collect::<Vec<_>>());
        let ci_b = build(&b.iter().collect::<Vec<_>>());
        // CG diff owns missing-node reporting; CI diff must not panic.
        assert!(diff(&ci_a, &ci_b, 3.84).is_empty());
    }

    #[test]
    fn empty_interaction_normalizes_to_empty() {
        let ni = NodeInteraction::default();
        assert_eq!(ni.total(), 0);
        assert!(ni.normalized().is_empty());
    }
}
