//! The partial correlation (PC) signature.
//!
//! Quantifies the strength of dependencies that DD only locates: the log
//! window is divided into equal epochs, flow counts per edge form a time
//! series, and adjacent edges' series are correlated with Pearson's
//! coefficient (Section III-B).

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use crate::change::{Change, ChangeDirection, Component, Locus, SignatureKind};
use crate::groups::Edge;
use crate::ids::{EntityCatalog, IRecord};
use crate::signatures::delay::EdgePair;
use crate::signatures::{
    DiffCtx, Signature, SignatureBuilder, SignatureInputs, StabilityCtx, StabilityMask,
};
use crate::stats::pearson;

/// The PC signature of one application group.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PartialCorrelation {
    /// Pearson coefficient per adjacent edge pair.
    pub per_pair: BTreeMap<EdgePair, f64>,
}

/// A weakened or strengthened dependency between adjacent edges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcChange {
    /// The edge pair.
    pub pair: EdgePair,
    /// Reference coefficient.
    pub reference: f64,
    /// Current coefficient.
    pub current: f64,
}

impl PcChange {
    /// Magnitude of the change.
    pub fn delta(&self) -> f64 {
        (self.current - self.reference).abs()
    }
}

/// Incremental PC accumulator: per-edge epoch count series, bucketed on
/// the fly (the window and epoch grid are fixed at construction), with
/// the Pearson pairing deferred to `finalize`.
#[derive(Debug, Clone, Default)]
pub struct PcBuilder {
    start: u64,
    end: u64,
    epochs: usize,
    epoch_us: u64,
    series: HashMap<u64, Vec<f64>>,
}

impl SignatureBuilder for PcBuilder {
    type Output = PartialCorrelation;

    fn observe(&mut self, record: &IRecord) {
        let t = record.first_seen.as_micros();
        if t < self.start || t >= self.end {
            return;
        }
        let idx = ((t - self.start) / self.epoch_us) as usize;
        let epochs = self.epochs;
        let s = self
            .series
            .entry(record.edge_key())
            .or_insert_with(|| vec![0.0; epochs]);
        s[idx.min(epochs - 1)] += 1.0;
    }

    fn retire(&mut self, record: &IRecord) {
        let t = record.first_seen.as_micros();
        if t < self.start || t >= self.end {
            return; // never observed: outside the grid
        }
        let idx = (((t - self.start) / self.epoch_us) as usize).min(self.epochs - 1);
        if let Some(s) = self.series.get_mut(&record.edge_key()) {
            // Counts are small integers held in f64, so subtraction is
            // exact and a drained bucket is exactly 0.0.
            s[idx] -= 1.0;
            if s.iter().all(|&v| v == 0.0) {
                self.series.remove(&record.edge_key());
            }
        }
    }

    fn finalize(&self, catalog: &EntityCatalog) -> PartialCorrelation {
        // Resolve to address-keyed series so the pairing loop visits
        // edges in address order, independent of interning order.
        let series: BTreeMap<Edge, &Vec<f64>> = self
            .series
            .iter()
            .map(|(&key, s)| (catalog.edge(key), s))
            .collect();
        let edges: Vec<Edge> = series.keys().copied().collect();
        let mut per_pair = BTreeMap::new();
        for in_edge in &edges {
            for out_edge in &edges {
                if in_edge.dst != out_edge.src || in_edge == out_edge {
                    continue;
                }
                if in_edge.src == out_edge.dst && in_edge.dst == out_edge.src {
                    continue;
                }
                if let Some(r) = pearson(series[in_edge], series[out_edge]) {
                    per_pair.insert((*in_edge, *out_edge), r);
                }
            }
        }
        PartialCorrelation { per_pair }
    }
}

impl Signature for PartialCorrelation {
    type Change = PcChange;
    type Builder = PcBuilder;
    const KIND: SignatureKind = SignatureKind::Pc;

    fn builder(inputs: &SignatureInputs<'_>) -> PcBuilder {
        let start = inputs.span.0.as_micros();
        let end = inputs.span.1.as_micros().max(start + 1);
        PcBuilder {
            start,
            end,
            epochs: ((end - start).div_ceil(inputs.config.epoch_us)).max(1) as usize,
            epoch_us: inputs.config.epoch_us,
            series: HashMap::new(),
        }
    }

    /// Scalar comparison (Section IV-A): pairs whose coefficient moved by
    /// more than `config.pc_delta`.
    fn diff(&self, current: &Self, ctx: &DiffCtx<'_>) -> Vec<PcChange> {
        let mut out = Vec::new();
        for (pair, &r_ref) in &self.per_pair {
            // A pair that lost its correlation signal entirely (constant
            // or absent downstream series) counts as r = 0: the
            // dependency is no longer observable.
            let r_cur = current.per_pair.get(pair).copied().unwrap_or(0.0);
            let change = PcChange {
                pair: *pair,
                reference: r_ref,
                current: r_cur,
            };
            if change.delta() > ctx.config.pc_delta {
                out.push(change);
            }
        }
        out.sort_by(|a, b| b.delta().total_cmp(&a.delta()));
        out
    }

    /// PC is gated per adjacent edge pair.
    fn locus(change: &PcChange) -> Locus {
        Locus::Pair(change.pair)
    }

    fn render(change: &PcChange) -> Change {
        Change {
            kind: Self::KIND,
            direction: ChangeDirection::Shifted,
            description: format!(
                "correlation {:.2} -> {:.2} at {}",
                change.reference, change.current, change.pair.0.dst
            ),
            components: vec![Component::Host(change.pair.0.dst)],
            ts: None,
        }
    }

    fn stable_mask(&self) -> StabilityMask {
        StabilityMask::per_locus(
            Self::KIND,
            self.per_pair
                .keys()
                .map(|p| (Locus::Pair(*p), true))
                .collect(),
        )
    }

    /// PC stability per pair: the interval coefficients must be tight
    /// (standard deviation below 0.25) across a quorum of intervals.
    fn stability(&self, intervals: &[&Self], ctx: &StabilityCtx<'_>) -> StabilityMask {
        let loci = self
            .per_pair
            .keys()
            .map(|pair| {
                let rs: Vec<f64> = intervals
                    .iter()
                    .filter_map(|g| g.per_pair.get(pair).copied())
                    .collect();
                let stable = rs.len() >= ctx.quorum.min(2) && {
                    let s = crate::stats::MeanStd::of(&rs);
                    s.std < 0.25
                };
                (Locus::Pair(*pair), stable)
            })
            .collect();
        StabilityMask::per_locus(Self::KIND, loci)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowDiffConfig;
    use crate::ids::{InternedLog, RecordIndex};
    use crate::records::{FlowRecord, FlowTuple};
    use openflow::types::{IpProto, Timestamp};
    use std::net::Ipv4Addr;

    fn ip(x: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, x)
    }

    fn record(s: u8, d: u8, at_us: u64, sport: u16) -> FlowRecord {
        FlowRecord {
            tuple: FlowTuple {
                src: ip(s),
                sport,
                dst: ip(d),
                dport: 80,
                proto: IpProto::TCP,
            },
            first_seen: Timestamp::from_micros(at_us),
            hops: vec![],
            byte_count: 0,
            packet_count: 0,
            duration_s: 0.0,
        }
    }

    fn span() -> (Timestamp, Timestamp) {
        (Timestamp::ZERO, Timestamp::from_secs(20))
    }

    /// Bursty chain: epochs alternate busy/quiet, and node 2 forwards
    /// `forward_per_burst` of each burst's requests downstream.
    fn bursty_chain(bursts: usize, per_burst: usize, forward_per_burst: usize) -> Vec<FlowRecord> {
        let mut out = Vec::new();
        let mut sport = 1000u16;
        for b in 0..bursts {
            // busy epoch every other second, varying burst size
            let t0 = b as u64 * 2_000_000;
            let size = per_burst + (b % 3) * per_burst;
            for i in 0..size {
                out.push(record(1, 2, t0 + i as u64 * 500, sport));
                sport += 1;
            }
            let fwd = forward_per_burst + (b % 3) * forward_per_burst;
            for i in 0..fwd {
                out.push(record(2, 3, t0 + 60_000 + i as u64 * 500, sport));
                sport += 1;
            }
        }
        out
    }

    fn build_pc(records: &[FlowRecord], sp: (Timestamp, Timestamp)) -> PartialCorrelation {
        let il = InternedLog::of(records);
        let config = FlowDiffConfig::default();
        PartialCorrelation::build(&SignatureInputs::new(&il.refs(), &il.catalog, sp, &config))
    }

    fn pc_of(records: &[FlowRecord]) -> PartialCorrelation {
        build_pc(records, span())
    }

    fn diff_pc(a: &PartialCorrelation, b: &PartialCorrelation) -> Vec<PcChange> {
        let config = FlowDiffConfig::default();
        let index = RecordIndex::default();
        a.diff(
            b,
            &DiffCtx {
                config: &config,
                records: &index,
            },
        )
    }

    #[test]
    fn dependent_edges_correlate_strongly() {
        let pc = pc_of(&bursty_chain(10, 10, 10));
        assert_eq!(pc.per_pair.len(), 1);
        let r = *pc.per_pair.values().next().unwrap();
        assert!(r > 0.9, "fully dependent edges: r = {r}");
    }

    #[test]
    fn partial_forwarding_still_correlates() {
        // 50% connection reuse: half the downstream flows disappear but
        // the visible ones still track the upstream bursts.
        let pc = pc_of(&bursty_chain(10, 10, 5));
        let r = *pc.per_pair.values().next().unwrap();
        assert!(r > 0.8, "reuse should not destroy correlation: r = {r}");
    }

    #[test]
    fn broken_dependency_detected() {
        let healthy = pc_of(&bursty_chain(10, 10, 10));
        // downstream stops tracking upstream: constant trickle instead
        let mut broken_records = Vec::new();
        let mut sport = 1000u16;
        for b in 0..10u64 {
            let t0 = b * 2_000_000;
            let size = 10 + (b as usize % 3) * 10;
            for i in 0..size {
                broken_records.push(record(1, 2, t0 + i as u64 * 500, sport));
                sport += 1;
            }
        }
        // uncorrelated out-edge: one flow per epoch regardless of load
        for e in 0..20u64 {
            broken_records.push(record(2, 3, e * 1_000_000 + 123, sport + e as u16));
        }
        let broken = pc_of(&broken_records);
        let changes = diff_pc(&healthy, &broken);
        assert_eq!(changes.len(), 1);
        assert!(changes[0].delta() > 0.35);
    }

    #[test]
    fn stable_correlation_not_flagged() {
        let a = pc_of(&bursty_chain(10, 10, 10));
        let b = pc_of(&bursty_chain(10, 14, 14));
        assert!(diff_pc(&a, &b).is_empty());
    }

    #[test]
    fn empty_records_build_empty_signature() {
        let pc = build_pc(&[], span());
        assert!(pc.per_pair.is_empty());
    }

    #[test]
    fn constant_series_yields_no_coefficient() {
        // one flow per epoch on both edges: zero variance, no r
        let mut records = Vec::new();
        for e in 0..10u64 {
            records.push(record(1, 2, e * 1_000_000, 1000 + e as u16));
            records.push(record(2, 3, e * 1_000_000 + 60_000, 2000 + e as u16));
        }
        // span exactly covers the ten active epochs
        let pc = build_pc(&records, (Timestamp::ZERO, Timestamp::from_secs(10)));
        assert!(pc.per_pair.is_empty());
    }

    #[test]
    fn render_names_the_shared_node() {
        let healthy = pc_of(&bursty_chain(10, 10, 10));
        let change = PcChange {
            pair: *healthy.per_pair.keys().next().unwrap(),
            reference: 0.95,
            current: 0.10,
        };
        let c = PartialCorrelation::render(&change);
        assert_eq!(c.kind, SignatureKind::Pc);
        assert_eq!(c.direction, ChangeDirection::Shifted);
        assert_eq!(c.components, vec![Component::Host(ip(2))]);
        assert!(c.description.contains("correlation 0.95 -> 0.10"));
    }
}
