//! The link-utilization (LU) baseline — part of the infrastructure
//! signature (Section III-C lists "baseline performance parameters
//! (such as link utilization …)").
//!
//! The controller periodically polls per-port byte counters
//! (`StatsRequest`/`StatsReply`); the deltas between consecutive polls
//! give a byte-rate series per switch port, summarized as mean ± std.

use std::collections::{BTreeMap, HashMap};

use netsim::log::ControlEvent;
use openflow::messages::{OfpMessage, StatsReply};
use openflow::types::{DatapathId, PortNo, Timestamp};
use serde::{Deserialize, Serialize};

use crate::change::{Change, ChangeDirection, Component, Locus, SignatureKind};
use crate::ids::{EntityCatalog, IRecord};
use crate::signatures::{DiffCtx, Signature, SignatureBuilder, SignatureInputs};
use crate::stats::MeanStd;

/// The LU signature: transmitted byte-rate summary per switch port.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkUtilization {
    /// Byte-rate summary (bytes/second) per `(switch, egress port)`.
    pub per_port: BTreeMap<(DatapathId, PortNo), MeanStd>,
}

/// A shifted link-utilization baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LuChange {
    /// The switch and egress port.
    pub port: (DatapathId, PortNo),
    /// Baseline rate summary, bytes/second.
    pub reference: MeanStd,
    /// Current rate summary.
    pub current: MeanStd,
    /// Shift in baseline standard deviations.
    pub sigmas: f64,
}

/// Incremental LU accumulator: the only builder fed from raw control
/// events rather than flow records (port counters never become flow
/// records). Keeps the cumulative counter series per port; rates are
/// derived at `finalize`. The series serializes with the rest of the
/// streaming state so an online checkpoint restores mid-poll without
/// losing the rate across the restart boundary.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LuBuilder {
    /// (dpid, port) -> [(poll time, cumulative tx bytes)]
    ///
    /// Port-stats events never pass through the record assembler, so
    /// there is no interning opportunity here: the series stays keyed by
    /// raw addresses in a flat hash map, and `finalize` sorts into the
    /// output `BTreeMap`.
    series: HashMap<(DatapathId, PortNo), Vec<(Timestamp, u64)>>,
}

impl LuBuilder {
    /// Drops counter samples polled before `cutoff` (sliding-window
    /// online mode). The rate across the dropped/kept boundary is lost
    /// with the points that defined it.
    pub fn retire_before(&mut self, cutoff: Timestamp) {
        self.series.retain(|_, points| {
            points.retain(|(ts, _)| *ts >= cutoff);
            !points.is_empty()
        });
    }

    /// Folds another builder's series into this one — the shard-merge
    /// path. A port's stats replies all carry the same `dpid`, so the
    /// splitter keeps each `(dpid, port)` series whole on one shard and
    /// the union here is disjoint: appending preserves the per-key
    /// observation order of the single-shard run exactly.
    pub fn absorb(&mut self, other: LuBuilder) {
        for (key, points) in other.series {
            self.series.entry(key).or_default().extend(points);
        }
    }

    /// Rough heap footprint of the counter series.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.series
            .values()
            .map(|v| size_of::<(DatapathId, PortNo)>() + v.len() * size_of::<(Timestamp, u64)>())
            .sum()
    }
}

impl SignatureBuilder for LuBuilder {
    type Output = LinkUtilization;

    fn observe(&mut self, _record: &IRecord) {}

    /// LU never observes flow records, so record retirement is a no-op;
    /// the counter series expires by timestamp via the inherent
    /// [`LuBuilder::retire_before`] instead.
    fn retire(&mut self, _record: &IRecord) {}

    fn observe_event(&mut self, event: &ControlEvent) {
        if let OfpMessage::StatsReply(StatsReply::Port(ports)) = &event.msg {
            for p in ports {
                self.series
                    .entry((event.dpid, p.port_no))
                    .or_default()
                    .push((event.ts, p.tx_bytes));
            }
        }
    }

    fn finalize(&self, _catalog: &EntityCatalog) -> LinkUtilization {
        let per_port = self
            .series
            .iter()
            .filter_map(|(key, points)| {
                let rates: Vec<f64> = points
                    .windows(2)
                    .filter_map(|w| {
                        let dt = w[1].0.saturating_since(w[0].0) as f64 / 1e6;
                        let db = w[1].1.saturating_sub(w[0].1) as f64;
                        (dt > 0.0).then_some(db / dt)
                    })
                    .collect();
                (!rates.is_empty()).then(|| (*key, MeanStd::of(&rates)))
            })
            .collect();
        LinkUtilization { per_port }
    }
}

impl Signature for LinkUtilization {
    type Change = LuChange;
    type Builder = LuBuilder;
    const KIND: SignatureKind = SignatureKind::Lu;

    /// The builder reads the port-stats replies from the raw log via
    /// `observe_event`; without a log the signature is empty.
    fn builder(_inputs: &SignatureInputs<'_>) -> LuBuilder {
        LuBuilder::default()
    }

    /// Flags ports whose mean byte rate moved beyond `config.isl_sigma`
    /// baseline standard deviations (utilization shares the
    /// infrastructure latency threshold).
    fn diff(&self, current: &Self, ctx: &DiffCtx<'_>) -> Vec<LuChange> {
        let config = ctx.config;
        let mut out = Vec::new();
        for (port, ref_stats) in &self.per_port {
            let Some(cur_stats) = current.per_port.get(port) else {
                continue;
            };
            if ref_stats.n < config.min_samples || cur_stats.n < config.min_samples {
                continue;
            }
            let sigmas = ref_stats.shift_sigmas(cur_stats);
            // Also require a material relative change: port rates are
            // bursty and a tight baseline std would otherwise make noise
            // alarm.
            let rel = (cur_stats.mean - ref_stats.mean).abs() / ref_stats.mean.abs().max(1.0);
            if sigmas > config.isl_sigma && rel > config.fs_rel_change {
                out.push(LuChange {
                    port: *port,
                    reference: *ref_stats,
                    current: *cur_stats,
                    sigmas,
                });
            }
        }
        out.sort_by(|a, b| b.sigmas.total_cmp(&a.sigmas));
        out
    }

    /// LU is already gated by `min_samples` and the relative-change bar.
    fn locus(_change: &LuChange) -> Locus {
        Locus::Whole
    }

    fn render(change: &LuChange) -> Change {
        Change {
            kind: Self::KIND,
            direction: ChangeDirection::Shifted,
            description: format!(
                "utilization {:.0} -> {:.0} bytes/s on {} {} ({:.1} sigma)",
                change.reference.mean,
                change.current.mean,
                change.port.0,
                change.port.1,
                change.sigmas
            ),
            components: vec![Component::Switch(change.port.0)],
            ts: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowDiffConfig;
    use netsim::log::{ControlEvent, ControllerLog, Direction};
    use openflow::messages::PortStats;
    use openflow::types::Xid;

    fn reply(ts_s: u64, dpid: u64, port: u16, tx_bytes: u64) -> ControlEvent {
        ControlEvent {
            ts: Timestamp::from_secs(ts_s),
            dpid: DatapathId(dpid),
            direction: Direction::ToController,
            xid: Xid(0),
            msg: OfpMessage::StatsReply(StatsReply::Port(vec![PortStats {
                port_no: PortNo(port),
                tx_bytes,
                tx_packets: tx_bytes / 1_000,
                ..PortStats::default()
            }])),
        }
    }

    fn lu_of(log: &ControllerLog) -> LinkUtilization {
        let config = FlowDiffConfig::default();
        let catalog = EntityCatalog::new();
        LinkUtilization::build(
            &SignatureInputs::new(&[], &catalog, (Timestamp::ZERO, Timestamp::ZERO), &config)
                .with_log(log),
        )
    }

    fn diff_lu(a: &LinkUtilization, b: &LinkUtilization) -> Vec<LuChange> {
        let config = FlowDiffConfig::default();
        let index = crate::ids::RecordIndex::default();
        a.diff(
            b,
            &DiffCtx {
                config: &config,
                records: &index,
            },
        )
    }

    #[test]
    fn rates_from_cumulative_counters() {
        let log: ControllerLog = vec![
            reply(10, 1, 2, 0),
            reply(20, 1, 2, 1_000_000),
            reply(30, 1, 2, 2_000_000),
            reply(40, 1, 2, 3_000_000),
        ]
        .into_iter()
        .collect();
        let lu = lu_of(&log);
        let stats = &lu.per_port[&(DatapathId(1), PortNo(2))];
        assert_eq!(stats.n, 3);
        assert!((stats.mean - 100_000.0).abs() < 1.0, "100 KB/s");
        assert!(stats.std < 1.0);
    }

    #[test]
    fn single_poll_yields_no_rate() {
        let log: ControllerLog = vec![reply(10, 1, 2, 500)].into_iter().collect();
        assert!(lu_of(&log).per_port.is_empty());
    }

    #[test]
    fn missing_log_builds_empty_signature() {
        let config = FlowDiffConfig::default();
        let catalog = EntityCatalog::new();
        let lu = LinkUtilization::build(&SignatureInputs::new(
            &[],
            &catalog,
            (Timestamp::ZERO, Timestamp::ZERO),
            &config,
        ));
        assert!(lu.per_port.is_empty());
    }

    #[test]
    fn diff_flags_big_rate_jump_only() {
        let steady = |rate: u64| -> LinkUtilization {
            let log: ControllerLog = (0..8u64)
                .map(|i| reply(10 * (i + 1), 1, 2, rate * 10 * i))
                .collect();
            lu_of(&log)
        };
        let config = FlowDiffConfig::default();
        let base = steady(100_000);
        let same = steady(101_000);
        let busy = steady(5_000_000);
        assert!(diff_lu(&base, &same).is_empty());
        let changes = diff_lu(&base, &busy);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].port, (DatapathId(1), PortNo(2)));
        assert!(changes[0].sigmas > config.isl_sigma);
        let rendered = LinkUtilization::render(&changes[0]);
        assert_eq!(rendered.kind, SignatureKind::Lu);
        assert_eq!(rendered.components, vec![Component::Switch(DatapathId(1))]);
    }

    #[test]
    fn ports_present_in_one_log_only_are_skipped() {
        let log_a: ControllerLog = (0..4u64)
            .map(|i| reply(10 * (i + 1), 1, 2, 1_000 * i))
            .collect();
        let log_b: ControllerLog = (0..4u64)
            .map(|i| reply(10 * (i + 1), 9, 9, 1_000 * i))
            .collect();
        assert!(diff_lu(&lu_of(&log_a), &lu_of(&log_b)).is_empty());
    }
}
