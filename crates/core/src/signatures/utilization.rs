//! The link-utilization (LU) baseline — part of the infrastructure
//! signature (Section III-C lists "baseline performance parameters
//! (such as link utilization …)").
//!
//! The controller periodically polls per-port byte counters
//! (`StatsRequest`/`StatsReply`); the deltas between consecutive polls
//! give a byte-rate series per switch port, summarized as mean ± std.

use std::collections::{BTreeMap, HashMap};

use netsim::log::ControllerLog;
use openflow::messages::{OfpMessage, StatsReply};
use openflow::types::{DatapathId, PortNo, Timestamp};
use serde::{Deserialize, Serialize};

use crate::config::FlowDiffConfig;
use crate::stats::MeanStd;

/// The LU signature: transmitted byte-rate summary per switch port.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkUtilization {
    /// Byte-rate summary (bytes/second) per `(switch, egress port)`.
    pub per_port: BTreeMap<(DatapathId, PortNo), MeanStd>,
}

/// Builds the LU signature from the port-stats replies in a log.
pub fn build_utilization(log: &ControllerLog) -> LinkUtilization {
    // (dpid, port) -> [(poll time, cumulative tx bytes)]
    let mut series: HashMap<(DatapathId, PortNo), Vec<(Timestamp, u64)>> = HashMap::new();
    for ev in log.events() {
        if let OfpMessage::StatsReply(StatsReply::Port(ports)) = &ev.msg {
            for p in ports {
                series
                    .entry((ev.dpid, p.port_no))
                    .or_default()
                    .push((ev.ts, p.tx_bytes));
            }
        }
    }
    let per_port = series
        .into_iter()
        .filter_map(|(key, points)| {
            let rates: Vec<f64> = points
                .windows(2)
                .filter_map(|w| {
                    let dt = w[1].0.saturating_since(w[0].0) as f64 / 1e6;
                    let db = w[1].1.saturating_sub(w[0].1) as f64;
                    (dt > 0.0).then_some(db / dt)
                })
                .collect();
            (!rates.is_empty()).then(|| (key, MeanStd::of(&rates)))
        })
        .collect();
    LinkUtilization { per_port }
}

/// A shifted link-utilization baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LuChange {
    /// The switch and egress port.
    pub port: (DatapathId, PortNo),
    /// Baseline rate summary, bytes/second.
    pub reference: MeanStd,
    /// Current rate summary.
    pub current: MeanStd,
    /// Shift in baseline standard deviations.
    pub sigmas: f64,
}

/// Flags ports whose mean byte rate moved beyond `config.isl_sigma`
/// baseline standard deviations (utilization shares the infrastructure
/// latency threshold).
pub fn diff_utilization(
    reference: &LinkUtilization,
    current: &LinkUtilization,
    config: &FlowDiffConfig,
) -> Vec<LuChange> {
    let mut out = Vec::new();
    for (port, ref_stats) in &reference.per_port {
        let Some(cur_stats) = current.per_port.get(port) else {
            continue;
        };
        if ref_stats.n < config.min_samples || cur_stats.n < config.min_samples {
            continue;
        }
        let sigmas = ref_stats.shift_sigmas(cur_stats);
        // Also require a material relative change: port rates are bursty
        // and a tight baseline std would otherwise make noise alarm.
        let rel = (cur_stats.mean - ref_stats.mean).abs() / ref_stats.mean.abs().max(1.0);
        if sigmas > config.isl_sigma && rel > config.fs_rel_change {
            out.push(LuChange {
                port: *port,
                reference: *ref_stats,
                current: *cur_stats,
                sigmas,
            });
        }
    }
    out.sort_by(|a, b| b.sigmas.total_cmp(&a.sigmas));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::log::{ControlEvent, Direction};
    use openflow::messages::PortStats;
    use openflow::types::Xid;

    fn reply(ts_s: u64, dpid: u64, port: u16, tx_bytes: u64) -> ControlEvent {
        ControlEvent {
            ts: Timestamp::from_secs(ts_s),
            dpid: DatapathId(dpid),
            direction: Direction::ToController,
            xid: Xid(0),
            msg: OfpMessage::StatsReply(StatsReply::Port(vec![PortStats {
                port_no: PortNo(port),
                tx_bytes,
                tx_packets: tx_bytes / 1_000,
                ..PortStats::default()
            }])),
        }
    }

    #[test]
    fn rates_from_cumulative_counters() {
        let log: ControllerLog = vec![
            reply(10, 1, 2, 0),
            reply(20, 1, 2, 1_000_000),
            reply(30, 1, 2, 2_000_000),
            reply(40, 1, 2, 3_000_000),
        ]
        .into_iter()
        .collect();
        let lu = build_utilization(&log);
        let stats = &lu.per_port[&(DatapathId(1), PortNo(2))];
        assert_eq!(stats.n, 3);
        assert!((stats.mean - 100_000.0).abs() < 1.0, "100 KB/s");
        assert!(stats.std < 1.0);
    }

    #[test]
    fn single_poll_yields_no_rate() {
        let log: ControllerLog = vec![reply(10, 1, 2, 500)].into_iter().collect();
        assert!(build_utilization(&log).per_port.is_empty());
    }

    #[test]
    fn diff_flags_big_rate_jump_only() {
        let steady = |rate: u64| -> LinkUtilization {
            let log: ControllerLog = (0..8u64)
                .map(|i| reply(10 * (i + 1), 1, 2, rate * 10 * i))
                .collect();
            build_utilization(&log)
        };
        let config = FlowDiffConfig::default();
        let base = steady(100_000);
        let same = steady(101_000);
        let busy = steady(5_000_000);
        assert!(diff_utilization(&base, &same, &config).is_empty());
        let changes = diff_utilization(&base, &busy, &config);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].port, (DatapathId(1), PortNo(2)));
        assert!(changes[0].sigmas > config.isl_sigma);
    }

    #[test]
    fn ports_present_in_one_log_only_are_skipped() {
        let log_a: ControllerLog = (0..4u64)
            .map(|i| reply(10 * (i + 1), 1, 2, 1_000 * i))
            .collect();
        let log_b: ControllerLog = (0..4u64)
            .map(|i| reply(10 * (i + 1), 9, 9, 1_000 * i))
            .collect();
        let a = build_utilization(&log_a);
        let b = build_utilization(&log_b);
        assert!(diff_utilization(&a, &b, &FlowDiffConfig::default()).is_empty());
    }
}
