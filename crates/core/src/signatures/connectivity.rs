//! The connectivity graph (CG) signature.
//!
//! Captures which application nodes open flows to which (Section III-B).
//! Robust to workload changes: the edge set depends only on the
//! application's internal structure.

use std::collections::{BTreeSet, HashMap};

use openflow::types::Timestamp;
use serde::{Deserialize, Serialize};

use crate::change::{Change, ChangeDirection, Component, Locus, SignatureKind};
use crate::groups::Edge;
use crate::ids::{EntityCatalog, IRecord};
use crate::signatures::{
    DiffCtx, Signature, SignatureBuilder, SignatureInputs, StabilityCtx, StabilityMask,
};

/// The connectivity graph of one application group.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConnectivityGraph {
    /// Directed member-to-member edges.
    pub edges: BTreeSet<Edge>,
    /// Edges touching special-purpose service nodes.
    pub service_edges: BTreeSet<Edge>,
}

impl ConnectivityGraph {
    /// All edges including service edges.
    pub fn all_edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter().chain(self.service_edges.iter())
    }
}

/// An edge present in one log but not the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CgChange {
    /// The edge.
    pub edge: Edge,
    /// True when the edge is new in the current graph, false when it
    /// disappeared from the reference.
    pub added: bool,
    /// When the edge first appeared in the current log (added edges
    /// only; removed edges have no appearance time).
    pub first_seen: Option<Timestamp>,
}

/// Incremental CG accumulator: classifies each record's endpoint pair
/// against the configured special-purpose IPs, exactly as the group
/// discovery does — member-to-member flows become edges, flows touching
/// one special node become service edges, special-to-special traffic is
/// ignored. For a group's own records this reproduces the group's edge
/// sets precisely.
///
/// Hot-path state is dense: a per-host special flag indexed by
/// [`crate::ids::HostId`] and packed-edge refcount maps (how many live
/// records assert each edge, so retiring a record can drop the edge
/// exactly when its last witness expires), resolved back to
/// address-keyed `BTreeSet`s only at `finalize`.
#[derive(Debug, Clone, Default)]
pub struct CgBuilder {
    special: Vec<bool>,
    edges: HashMap<u64, u32>,
    service_edges: HashMap<u64, u32>,
}

impl CgBuilder {
    /// The refcount map a record's edge belongs to, by endpoint
    /// classification — `None` for special-to-special traffic.
    fn bucket_of(&mut self, record: &IRecord) -> Option<&mut HashMap<u64, u32>> {
        match (
            self.special[record.src.index()],
            self.special[record.dst.index()],
        ) {
            (false, false) => Some(&mut self.edges),
            (true, true) => None, // service-to-service traffic: not an app flow
            _ => Some(&mut self.service_edges),
        }
    }
}

impl SignatureBuilder for CgBuilder {
    type Output = ConnectivityGraph;

    fn observe(&mut self, record: &IRecord) {
        let key = record.edge_key();
        if let Some(bucket) = self.bucket_of(record) {
            *bucket.entry(key).or_insert(0) += 1;
        }
    }

    fn retire(&mut self, record: &IRecord) {
        let key = record.edge_key();
        if let Some(bucket) = self.bucket_of(record) {
            if let Some(count) = bucket.get_mut(&key) {
                *count -= 1;
                if *count == 0 {
                    bucket.remove(&key);
                }
            }
        }
    }

    fn finalize(&self, catalog: &EntityCatalog) -> ConnectivityGraph {
        ConnectivityGraph {
            edges: self.edges.keys().map(|&k| catalog.edge(k)).collect(),
            service_edges: self
                .service_edges
                .keys()
                .map(|&k| catalog.edge(k))
                .collect(),
        }
    }
}

impl Signature for ConnectivityGraph {
    type Change = CgChange;
    type Builder = CgBuilder;
    const KIND: SignatureKind = SignatureKind::Cg;

    fn builder(inputs: &SignatureInputs<'_>) -> CgBuilder {
        CgBuilder {
            special: inputs
                .catalog
                .hosts()
                .iter()
                .map(|&ip| inputs.config.is_special(ip))
                .collect(),
            edges: HashMap::new(),
            service_edges: HashMap::new(),
        }
    }

    /// Graph-matching diff (Section IV-A): lists new and missing edges,
    /// with appearance timestamps for new edges pulled from the current
    /// records.
    ///
    /// An edge counts as *removed* only when no flow with that source
    /// and destination exists anywhere in the current log — group
    /// fragmentation can move an edge into a different group without the
    /// traffic actually disappearing.
    fn diff(&self, current: &Self, ctx: &DiffCtx<'_>) -> Vec<CgChange> {
        let ref_all: BTreeSet<Edge> = self.all_edges().copied().collect();
        let cur_all: BTreeSet<Edge> = current.all_edges().copied().collect();
        let first_seen_of = |e: &Edge| ctx.records.first_seen(e);
        let mut out: Vec<CgChange> = cur_all
            .difference(&ref_all)
            .map(|e| CgChange {
                edge: *e,
                added: true,
                first_seen: first_seen_of(e),
            })
            .collect();
        out.extend(
            ref_all
                .difference(&cur_all)
                .filter(|e| first_seen_of(e).is_none())
                .map(|e| CgChange {
                    edge: *e,
                    added: false,
                    first_seen: None,
                }),
        );
        out
    }

    /// CG is accepted or rejected wholesale.
    fn locus(_change: &CgChange) -> Locus {
        Locus::Whole
    }

    fn render(change: &CgChange) -> Change {
        let components = vec![
            Component::Host(change.edge.src),
            Component::Host(change.edge.dst),
        ];
        if change.added {
            Change {
                kind: Self::KIND,
                direction: ChangeDirection::Added,
                description: format!("new edge {}", change.edge),
                components,
                ts: change.first_seen,
            }
        } else {
            Change {
                kind: Self::KIND,
                direction: ChangeDirection::Removed,
                description: format!("missing edge {}", change.edge),
                components,
                ts: None,
            }
        }
    }

    /// CG stability: a quorum of interval edge sets must largely agree
    /// (Jaccard similarity ≥ 0.8) with the full-log edge set.
    fn stability(&self, intervals: &[&Self], ctx: &StabilityCtx<'_>) -> StabilityMask {
        let votes = intervals
            .iter()
            .filter(|g| {
                let inter = g.edges.intersection(&self.edges).count();
                let union = g.edges.union(&self.edges).count();
                union > 0 && inter as f64 / union as f64 >= 0.8
            })
            .count();
        StabilityMask::whole(Self::KIND, votes >= ctx.quorum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlowDiffConfig;
    use crate::ids::RecordIndex;
    use crate::records::{FlowRecord, FlowTuple};
    use openflow::types::IpProto;
    use std::net::Ipv4Addr;

    fn ip(x: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, x)
    }

    fn edge(a: u8, b: u8) -> Edge {
        Edge {
            src: ip(a),
            dst: ip(b),
        }
    }

    fn cg(edges: &[Edge]) -> ConnectivityGraph {
        ConnectivityGraph {
            edges: edges.iter().copied().collect(),
            service_edges: BTreeSet::new(),
        }
    }

    fn record(e: Edge, at_us: u64) -> FlowRecord {
        FlowRecord {
            tuple: FlowTuple {
                src: e.src,
                sport: 1,
                dst: e.dst,
                dport: 80,
                proto: IpProto::TCP,
            },
            first_seen: Timestamp::from_micros(at_us),
            hops: vec![],
            byte_count: 0,
            packet_count: 0,
            duration_s: 0.0,
        }
    }

    fn diff_cg(
        reference: &ConnectivityGraph,
        current: &ConnectivityGraph,
        records: &[FlowRecord],
    ) -> Vec<CgChange> {
        let config = FlowDiffConfig::default();
        let index = RecordIndex::of_records(records);
        reference.diff(
            current,
            &DiffCtx {
                config: &config,
                records: &index,
            },
        )
    }

    #[test]
    fn identical_graphs_diff_empty() {
        let g = cg(&[edge(1, 2), edge(2, 3)]);
        assert!(diff_cg(&g, &g, &[]).is_empty());
    }

    #[test]
    fn added_edge_carries_first_seen() {
        let reference = cg(&[edge(1, 2)]);
        let current = cg(&[edge(1, 2), edge(2, 9)]);
        let records = vec![record(edge(2, 9), 5_000), record(edge(2, 9), 2_000)];
        let d = diff_cg(&reference, &current, &records);
        assert_eq!(d.len(), 1);
        assert!(d[0].added);
        assert_eq!(d[0].edge, edge(2, 9));
        assert_eq!(d[0].first_seen, Some(Timestamp::from_micros(2_000)));
    }

    #[test]
    fn removed_edge_detected() {
        let reference = cg(&[edge(1, 2), edge(2, 3)]);
        let current = cg(&[edge(1, 2)]);
        let d = diff_cg(&reference, &current, &[]);
        assert_eq!(d.len(), 1);
        assert!(!d[0].added);
        assert_eq!(d[0].edge, edge(2, 3));
        assert_eq!(d[0].first_seen, None);
    }

    #[test]
    fn service_edges_participate_in_diff() {
        let mut reference = cg(&[edge(1, 2)]);
        reference.service_edges.insert(edge(1, 200));
        let current = cg(&[edge(1, 2)]);
        let d = diff_cg(&reference, &current, &[]);
        assert_eq!(d.len(), 1, "lost service edge must be reported");
        assert!(!d[0].added);
    }

    #[test]
    fn render_tags_direction_and_hosts() {
        let added = CgChange {
            edge: edge(1, 2),
            added: true,
            first_seen: Some(Timestamp::from_secs(7)),
        };
        let c = ConnectivityGraph::render(&added);
        assert_eq!(c.kind, SignatureKind::Cg);
        assert_eq!(c.direction, ChangeDirection::Added);
        assert_eq!(c.ts, Some(Timestamp::from_secs(7)));
        assert_eq!(
            c.components,
            vec![Component::Host(ip(1)), Component::Host(ip(2))]
        );
        assert!(c.description.contains("new edge"));

        let removed = CgChange {
            edge: edge(1, 2),
            added: false,
            first_seen: None,
        };
        let c = ConnectivityGraph::render(&removed);
        assert_eq!(c.direction, ChangeDirection::Removed);
        assert!(c.description.contains("missing edge"));
    }

    #[test]
    fn build_without_group_is_empty() {
        let config = FlowDiffConfig::default();
        let catalog = EntityCatalog::new();
        let inputs =
            SignatureInputs::new(&[], &catalog, (Timestamp::ZERO, Timestamp::ZERO), &config);
        let g = ConnectivityGraph::build(&inputs);
        assert!(g.edges.is_empty() && g.service_edges.is_empty());
    }

    #[test]
    fn unstable_mask_gates_whole_diff() {
        let reference = cg(&[edge(1, 2), edge(2, 3)]);
        let current = cg(&[edge(1, 2)]);
        let config = FlowDiffConfig::default();
        let index = RecordIndex::default();
        let ctx = DiffCtx {
            config: &config,
            records: &index,
        };
        let unstable = StabilityMask::whole(SignatureKind::Cg, false);
        assert!(reference.tagged_diff(&current, &ctx, &unstable).is_empty());
        let stable = reference.stable_mask();
        assert_eq!(reference.tagged_diff(&current, &ctx, &stable).len(), 1);
    }
}
