//! The connectivity graph (CG) signature.
//!
//! Captures which application nodes open flows to which (Section III-B).
//! Robust to workload changes: the edge set depends only on the
//! application's internal structure.

use std::collections::BTreeSet;

use openflow::types::Timestamp;
use serde::{Deserialize, Serialize};

use crate::groups::{AppGroup, Edge};
use crate::records::FlowRecord;

/// The connectivity graph of one application group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectivityGraph {
    /// Directed member-to-member edges.
    pub edges: BTreeSet<Edge>,
    /// Edges touching special-purpose service nodes.
    pub service_edges: BTreeSet<Edge>,
}

impl ConnectivityGraph {
    /// Builds the CG of a group (the group discovery already collected
    /// the edge sets).
    pub fn build(group: &AppGroup) -> ConnectivityGraph {
        ConnectivityGraph {
            edges: group.edges.clone(),
            service_edges: group.service_edges.clone(),
        }
    }

    /// All edges including service edges.
    pub fn all_edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter().chain(self.service_edges.iter())
    }
}

/// An edge present in one log but not the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeChange {
    /// The edge.
    pub edge: Edge,
    /// When the edge first appeared in the log that has it (for added
    /// edges: the current log; for removed: unknown, `None`).
    pub first_seen: Option<Timestamp>,
}

/// Difference between two connectivity graphs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CgDiff {
    /// Edges in the current graph missing from the reference.
    pub added: Vec<EdgeChange>,
    /// Edges in the reference missing from the current graph.
    pub removed: Vec<EdgeChange>,
}

impl CgDiff {
    /// True when the graphs are identical.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Graph-matching diff (Section IV-A): lists missing and new edges, with
/// appearance timestamps for new edges pulled from the current records.
///
/// An edge counts as *removed* only when no flow with that source and
/// destination exists anywhere in the current log — group fragmentation
/// can move an edge into a different group without the traffic actually
/// disappearing.
pub fn diff(
    reference: &ConnectivityGraph,
    current: &ConnectivityGraph,
    current_records: &[FlowRecord],
) -> CgDiff {
    let ref_all: BTreeSet<Edge> = reference.all_edges().copied().collect();
    let cur_all: BTreeSet<Edge> = current.all_edges().copied().collect();
    let first_seen_of = |e: &Edge| {
        current_records
            .iter()
            .filter(|r| r.tuple.src == e.src && r.tuple.dst == e.dst)
            .map(|r| r.first_seen)
            .min()
    };
    CgDiff {
        added: cur_all
            .difference(&ref_all)
            .map(|e| EdgeChange {
                edge: *e,
                first_seen: first_seen_of(e),
            })
            .collect(),
        removed: ref_all
            .difference(&cur_all)
            .filter(|e| first_seen_of(e).is_none())
            .map(|e| EdgeChange {
                edge: *e,
                first_seen: None,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::FlowTuple;
    use openflow::types::IpProto;
    use std::net::Ipv4Addr;

    fn ip(x: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, x)
    }

    fn edge(a: u8, b: u8) -> Edge {
        Edge {
            src: ip(a),
            dst: ip(b),
        }
    }

    fn cg(edges: &[Edge]) -> ConnectivityGraph {
        ConnectivityGraph {
            edges: edges.iter().copied().collect(),
            service_edges: BTreeSet::new(),
        }
    }

    fn record(e: Edge, at_us: u64) -> FlowRecord {
        FlowRecord {
            tuple: FlowTuple {
                src: e.src,
                sport: 1,
                dst: e.dst,
                dport: 80,
                proto: IpProto::TCP,
            },
            first_seen: Timestamp::from_micros(at_us),
            hops: vec![],
            byte_count: 0,
            packet_count: 0,
            duration_s: 0.0,
        }
    }

    #[test]
    fn identical_graphs_diff_empty() {
        let g = cg(&[edge(1, 2), edge(2, 3)]);
        assert!(diff(&g, &g, &[]).is_empty());
    }

    #[test]
    fn added_edge_carries_first_seen() {
        let reference = cg(&[edge(1, 2)]);
        let current = cg(&[edge(1, 2), edge(2, 9)]);
        let records = vec![record(edge(2, 9), 5_000), record(edge(2, 9), 2_000)];
        let d = diff(&reference, &current, &records);
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].edge, edge(2, 9));
        assert_eq!(d.added[0].first_seen, Some(Timestamp::from_micros(2_000)));
        assert!(d.removed.is_empty());
    }

    #[test]
    fn removed_edge_detected() {
        let reference = cg(&[edge(1, 2), edge(2, 3)]);
        let current = cg(&[edge(1, 2)]);
        let d = diff(&reference, &current, &[]);
        assert!(d.added.is_empty());
        assert_eq!(d.removed.len(), 1);
        assert_eq!(d.removed[0].edge, edge(2, 3));
        assert_eq!(d.removed[0].first_seen, None);
    }

    #[test]
    fn service_edges_participate_in_diff() {
        let mut reference = cg(&[edge(1, 2)]);
        reference.service_edges.insert(edge(1, 200));
        let current = cg(&[edge(1, 2)]);
        let d = diff(&reference, &current, &[]);
        assert_eq!(d.removed.len(), 1, "lost service edge must be reported");
    }
}
