//! Application group discovery (Section III-B).
//!
//! Application nodes that form a connected communication graph are one
//! *application group* — e.g. a three-tier app's web, application, and
//! database servers. Nodes connected only through marked special-purpose
//! nodes (DNS, NFS, …) stay in separate groups: service edges do not
//! merge groups, but each group remembers its service edges.

use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use crate::config::FlowDiffConfig;
use crate::ids::{EntityCatalog, HostId, IRecord, InternedLog};
use crate::records::FlowRecord;

/// A directed application-layer edge: who opens flows to whom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Flow initiator.
    pub src: Ipv4Addr,
    /// Flow target.
    pub dst: Ipv4Addr,
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.src, self.dst)
    }
}

/// One discovered application group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppGroup {
    /// Member (non-special) node IPs, sorted.
    pub members: BTreeSet<Ipv4Addr>,
    /// Intra-group directed edges.
    pub edges: BTreeSet<Edge>,
    /// Edges from members to special-purpose nodes (kept for diagnosis
    /// but not used for grouping).
    pub service_edges: BTreeSet<Edge>,
    /// Indexes (into the record list) of flows belonging to this group.
    pub record_indices: Vec<usize>,
}

impl AppGroup {
    /// A stable identifier: the smallest member IP.
    pub fn group_key(&self) -> Option<Ipv4Addr> {
        self.members.iter().next().copied()
    }

    /// Jaccard similarity of member sets, used to match groups across two
    /// logs.
    pub fn similarity(&self, other: &AppGroup) -> f64 {
        let inter = self.members.intersection(&other.members).count();
        let union = self.members.union(&other.members).count();
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

/// Union-find over IPs.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Discovers application groups from flow records.
///
/// Returns groups sorted by their smallest member IP. Special-purpose
/// nodes never appear as members; flows between two special nodes are
/// ignored.
///
/// ```
/// use flowdiff::prelude::*;
/// use flowdiff::records::FlowTuple;
/// use openflow::types::{IpProto, Timestamp};
///
/// let record = |src: [u8; 4], dst: [u8; 4], dport: u16| FlowRecord {
///     tuple: FlowTuple {
///         src: src.into(), sport: 30_000, dst: dst.into(), dport,
///         proto: IpProto::TCP,
///     },
///     first_seen: Timestamp::ZERO,
///     hops: vec![],
///     byte_count: 0, packet_count: 0, duration_s: 0.0,
/// };
/// // web -> app -> db chain plus an unrelated pair
/// let records = vec![
///     record([10, 0, 0, 1], [10, 0, 0, 2], 8080),
///     record([10, 0, 0, 2], [10, 0, 0, 3], 3306),
///     record([10, 0, 1, 1], [10, 0, 1, 2], 80),
/// ];
/// let groups = discover_groups(&records, &FlowDiffConfig::default());
/// assert_eq!(groups.len(), 2);
/// assert_eq!(groups[0].members.len(), 3);
/// ```
pub fn discover_groups(records: &[FlowRecord], config: &FlowDiffConfig) -> Vec<AppGroup> {
    let il = InternedLog::of(records);
    discover_groups_interned(&il.refs(), &il.catalog, config)
}

/// [`discover_groups`] over already-interned records: the form the
/// model builder uses, with union-find running over dense host IDs.
///
/// The catalog may know more hosts than the records mention (a
/// pre-warmed sliding-window catalog after old records were retired);
/// only hosts appearing as a record endpoint become group members.
pub fn discover_groups_interned(
    records: &[&IRecord],
    catalog: &EntityCatalog,
    config: &FlowDiffConfig,
) -> Vec<AppGroup> {
    let n = catalog.n_hosts();
    let special: Vec<bool> = catalog
        .hosts()
        .iter()
        .map(|&ip| config.is_special(ip))
        .collect();
    let mut appears = vec![false; n];
    let mut dsu = Dsu::new(n);
    for r in records {
        let (s, d) = (r.src.index(), r.dst.index());
        if !special[s] {
            appears[s] = true;
        }
        if !special[d] {
            appears[d] = true;
        }
        if !special[s] && !special[d] {
            dsu.union(s, d);
        }
    }

    // Gather groups.
    let empty = || AppGroup {
        members: BTreeSet::new(),
        edges: BTreeSet::new(),
        service_edges: BTreeSet::new(),
        record_indices: Vec::new(),
    };
    let mut by_root: HashMap<usize, AppGroup> = HashMap::new();
    for (h, seen) in appears.iter().enumerate().take(n) {
        if !seen {
            continue;
        }
        let root = dsu.find(h);
        by_root
            .entry(root)
            .or_insert_with(empty)
            .members
            .insert(catalog.host(HostId(h as u32)));
    }

    for (i, r) in records.iter().enumerate() {
        let (s, d) = (r.src.index(), r.dst.index());
        let edge = || Edge {
            src: catalog.host(r.src),
            dst: catalog.host(r.dst),
        };
        match (special[s], special[d]) {
            (false, false) => {
                let root = dsu.find(s);
                let g = by_root.get_mut(&root).expect("root exists");
                g.edges.insert(edge());
                g.record_indices.push(i);
            }
            (false, true) => {
                let root = dsu.find(s);
                let g = by_root.get_mut(&root).expect("root exists");
                g.service_edges.insert(edge());
                g.record_indices.push(i);
            }
            (true, false) => {
                let root = dsu.find(d);
                let g = by_root.get_mut(&root).expect("root exists");
                g.service_edges.insert(edge());
                g.record_indices.push(i);
            }
            (true, true) => {} // service-to-service traffic: not an app flow
        }
    }

    let mut groups: Vec<AppGroup> = by_root.into_values().collect();
    groups.sort_by_key(|g| g.group_key());
    groups
}

/// Matches groups of a current model to groups of a reference model by
/// maximum member overlap. Returns `(ref_index, cur_index)` pairs plus
/// the unmatched indices on each side.
pub fn match_groups(
    reference: &[AppGroup],
    current: &[AppGroup],
) -> (Vec<(usize, usize)>, Vec<usize>, Vec<usize>) {
    let reference: Vec<&AppGroup> = reference.iter().collect();
    let current: Vec<&AppGroup> = current.iter().collect();
    match_group_refs(&reference, &current)
}

/// [`match_groups`] over borrowed groups — the diff and stability
/// engines use this to match without cloning member sets.
pub fn match_group_refs(
    reference: &[&AppGroup],
    current: &[&AppGroup],
) -> (Vec<(usize, usize)>, Vec<usize>, Vec<usize>) {
    let mut pairs = Vec::new();
    let mut used_cur = vec![false; current.len()];
    for (ri, r) in reference.iter().enumerate() {
        let best = current
            .iter()
            .enumerate()
            .filter(|(ci, _)| !used_cur[*ci])
            .map(|(ci, &c)| (ci, r.similarity(c)))
            .filter(|(_, s)| *s > 0.0)
            .max_by(|a, b| a.1.total_cmp(&b.1));
        if let Some((ci, _)) = best {
            used_cur[ci] = true;
            pairs.push((ri, ci));
        }
    }
    let matched_ref: BTreeSet<usize> = pairs.iter().map(|(r, _)| *r).collect();
    let unmatched_ref = (0..reference.len())
        .filter(|i| !matched_ref.contains(i))
        .collect();
    let unmatched_cur = (0..current.len()).filter(|i| !used_cur[*i]).collect();
    (pairs, unmatched_ref, unmatched_cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::FlowTuple;
    use openflow::types::{IpProto, Timestamp};

    fn ip(a: u8, b: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, a, b)
    }

    fn record(src: Ipv4Addr, dst: Ipv4Addr, dport: u16) -> FlowRecord {
        FlowRecord {
            tuple: FlowTuple {
                src,
                sport: 30_000,
                dst,
                dport,
                proto: IpProto::TCP,
            },
            first_seen: Timestamp::ZERO,
            hops: vec![],
            byte_count: 0,
            packet_count: 0,
            duration_s: 0.0,
        }
    }

    #[test]
    fn chain_forms_one_group() {
        let records = vec![
            record(ip(0, 1), ip(0, 2), 80),
            record(ip(0, 2), ip(0, 3), 8080),
            record(ip(0, 3), ip(0, 4), 3306),
        ];
        let groups = discover_groups(&records, &FlowDiffConfig::default());
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members.len(), 4);
        assert_eq!(groups[0].edges.len(), 3);
        assert_eq!(groups[0].record_indices, vec![0, 1, 2]);
    }

    #[test]
    fn disjoint_apps_form_separate_groups() {
        let records = vec![
            record(ip(0, 1), ip(0, 2), 80),
            record(ip(1, 1), ip(1, 2), 80),
        ];
        let groups = discover_groups(&records, &FlowDiffConfig::default());
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn special_nodes_do_not_merge_groups() {
        let dns = ip(200, 1);
        let config = FlowDiffConfig::default().with_special_ips([dns]);
        let records = vec![
            record(ip(0, 1), ip(0, 2), 80),
            record(ip(1, 1), ip(1, 2), 80),
            // both groups talk to DNS
            record(ip(0, 1), dns, 53),
            record(ip(1, 1), dns, 53),
        ];
        let groups = discover_groups(&records, &config);
        assert_eq!(groups.len(), 2, "shared DNS must not merge the groups");
        for g in &groups {
            assert!(!g.members.contains(&dns));
            assert_eq!(g.service_edges.len(), 1);
        }
    }

    #[test]
    fn without_domain_knowledge_shared_node_merges() {
        // Same traffic as above but DNS not marked: one merged group.
        let dns = ip(200, 1);
        let records = vec![
            record(ip(0, 1), ip(0, 2), 80),
            record(ip(1, 1), ip(1, 2), 80),
            record(ip(0, 1), dns, 53),
            record(ip(1, 1), dns, 53),
        ];
        let groups = discover_groups(&records, &FlowDiffConfig::default());
        assert_eq!(groups.len(), 1, "unmarked shared node merges groups");
    }

    #[test]
    fn service_to_service_flows_ignored() {
        let nfs = ip(200, 1);
        let dns = ip(200, 2);
        let config = FlowDiffConfig::default().with_special_ips([nfs, dns]);
        let records = vec![record(nfs, dns, 53)];
        let groups = discover_groups(&records, &config);
        assert!(groups.is_empty());
    }

    #[test]
    fn reply_flows_from_service_attach_to_member_group() {
        let nfs = ip(200, 1);
        let config = FlowDiffConfig::default().with_special_ips([nfs]);
        let records = vec![
            record(ip(0, 1), ip(0, 2), 80),
            record(nfs, ip(0, 1), 40_000), // NFS reply into the group
        ];
        let groups = discover_groups(&records, &config);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].service_edges.len(), 1);
        assert_eq!(groups[0].record_indices.len(), 2);
    }

    #[test]
    fn group_matching_by_overlap() {
        let g = |ips: &[Ipv4Addr]| AppGroup {
            members: ips.iter().copied().collect(),
            edges: BTreeSet::new(),
            service_edges: BTreeSet::new(),
            record_indices: vec![],
        };
        let reference = vec![g(&[ip(0, 1), ip(0, 2)]), g(&[ip(1, 1), ip(1, 2)])];
        let current = vec![
            g(&[ip(1, 1), ip(1, 2), ip(1, 3)]), // grew by one node
            g(&[ip(2, 1), ip(2, 2)]),           // brand new app
        ];
        let (pairs, unmatched_ref, unmatched_cur) = match_groups(&reference, &current);
        assert_eq!(pairs, vec![(1, 0)]);
        assert_eq!(unmatched_ref, vec![0]);
        assert_eq!(unmatched_cur, vec![1]);
    }

    #[test]
    fn similarity_is_jaccard() {
        let g = |ips: &[Ipv4Addr]| AppGroup {
            members: ips.iter().copied().collect(),
            edges: BTreeSet::new(),
            service_edges: BTreeSet::new(),
            record_indices: vec![],
        };
        let a = g(&[ip(0, 1), ip(0, 2), ip(0, 3)]);
        let b = g(&[ip(0, 2), ip(0, 3), ip(0, 4)]);
        assert!((a.similarity(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.similarity(&g(&[])), 0.0);
    }
}
