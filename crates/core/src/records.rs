//! Flow record extraction from the controller log.
//!
//! FlowDiff's signatures are built not from raw control messages but from
//! *flow records*: one record per flow episode, collecting the flow's
//! 5-tuple, the time-ordered `PacketIn` reports from every switch on its
//! path, the `FlowMod` replies, and the final counters from
//! `FlowRemoved`.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::net::Ipv4Addr;

use netsim::log::{ControlEvent, ControllerLog};
use openflow::frame;
use openflow::messages::OfpMessage;
use openflow::types::{DatapathId, IpProto, PortNo, Timestamp, Xid};
use serde::{Deserialize, Serialize};

use crate::config::FlowDiffConfig;
use crate::ids::{shard_of, EntityCatalog, ShardKey};

/// One countable irregularity in the control-event stream.
///
/// These are the event-level counterparts of the frame-level
/// [`netsim::log::DecodeError`]: the frame decoded fine, but the event
/// doesn't fit the protocol conversation the assembler expects. None of
/// them stop ingestion — the assembler counts the anomaly in its
/// [`IngestHealth`] and continues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestAnomaly {
    /// An event arrived with a timestamp earlier than an already-seen
    /// event (reordered capture or clock skew between taps).
    OutOfOrder,
    /// A second `FlowMod` reused an in-flight xid; the first one wins.
    DuplicateXid,
    /// A `FlowMod` whose xid never matched any `PacketIn` before it
    /// aged out.
    OrphanFlowMod,
    /// A `FlowRemoved` for a tuple with no open episode started before
    /// it.
    OrphanFlowRemoved,
    /// A `FlowMod` reply that arrived after its episode was already
    /// evicted past `partial_flow_timeout_us`.
    StaleAttach,
    /// An event whose timestamp jumped further beyond everything seen
    /// so far than `max_time_jump_us` allows (a corrupt clock reading);
    /// the event was dropped.
    TimeJump,
}

/// Ingestion health counters: how much of the input decoded cleanly and
/// what kinds of protocol irregularities were tolerated along the way.
///
/// The frame-level counters are filled from
/// [`netsim::log::StreamStats`] via [`IngestHealth::absorb_stream`];
/// the event-level counters accumulate inside [`RecordAssembler`]. On a
/// clean, time-sorted capture every field is zero except
/// `frames_decoded`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestHealth {
    /// Wire frames decoded into events.
    pub frames_decoded: u64,
    /// Corrupt wire regions skipped during resynchronization.
    pub frames_skipped: u64,
    /// Bytes discarded while resynchronizing.
    pub bytes_skipped: u64,
    /// Events that arrived out of time order.
    pub events_reordered: u64,
    /// Episodes evicted (emitted early) after idling past the horizon.
    pub episodes_evicted: u64,
    /// `FlowMod`s rejected for reusing an in-flight xid.
    pub duplicate_xids: u64,
    /// `FlowMod`s that never matched a `PacketIn`.
    pub orphan_flow_mods: u64,
    /// `FlowRemoved`s with no open episode to attach to.
    pub orphan_flow_removeds: u64,
    /// `FlowMod` replies that arrived after their episode was evicted.
    pub stale_attaches: u64,
    /// Events dropped for an implausible forward timestamp jump.
    pub time_jumps: u64,
    /// Publisher streams waived past the ingest stall budget (live
    /// transport only; see [`IngestHealth::absorb_conn`]).
    pub conn_stalls: u64,
    /// Abrupt publisher connection losses (resets, idle-timeout kills —
    /// not clean EOFs).
    pub conn_disconnects: u64,
    /// Publisher reconnects that resumed a session mid-stream.
    pub conn_resumes: u64,
}

impl IngestHealth {
    /// Counts one anomaly.
    pub fn record(&mut self, anomaly: IngestAnomaly) {
        match anomaly {
            IngestAnomaly::OutOfOrder => self.events_reordered += 1,
            IngestAnomaly::DuplicateXid => self.duplicate_xids += 1,
            IngestAnomaly::OrphanFlowMod => self.orphan_flow_mods += 1,
            IngestAnomaly::OrphanFlowRemoved => self.orphan_flow_removeds += 1,
            IngestAnomaly::StaleAttach => self.stale_attaches += 1,
            IngestAnomaly::TimeJump => self.time_jumps += 1,
        }
    }

    /// Folds a [`LogStream`](netsim::log::LogStream)'s frame counters
    /// into the health picture.
    pub fn absorb_stream(&mut self, stats: netsim::log::StreamStats) {
        self.frames_decoded += stats.frames_decoded;
        self.frames_skipped += stats.frames_skipped;
        self.bytes_skipped += stats.bytes_skipped;
    }

    /// Folds one live connection's lifecycle counters (stall waivers,
    /// abrupt losses, resumed reconnects) into the health picture. A
    /// clean wire run — or a file run, which has no connections —
    /// contributes zeros, so served and file health stay comparable.
    pub fn absorb_conn(&mut self, stalls: u64, disconnects: u64, resumes: u64) {
        self.conn_stalls += stalls;
        self.conn_disconnects += disconnects;
        self.conn_resumes += resumes;
    }

    /// Total event-level anomalies (excludes frame skips and episode
    /// evictions, which are reported separately).
    pub fn anomalies(&self) -> u64 {
        self.events_reordered
            + self.duplicate_xids
            + self.orphan_flow_mods
            + self.orphan_flow_removeds
            + self.stale_attaches
            + self.time_jumps
    }
}

impl fmt::Display for IngestHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} frames decoded, {} skipped ({} B); {} reordered, \
             {} dup xids, {} orphan mods, {} orphan removals, \
             {} stale attaches, {} time jumps; {} episodes evicted",
            self.frames_decoded,
            self.frames_skipped,
            self.bytes_skipped,
            self.events_reordered,
            self.duplicate_xids,
            self.orphan_flow_mods,
            self.orphan_flow_removeds,
            self.stale_attaches,
            self.time_jumps,
            self.episodes_evicted,
        )?;
        if self.conn_stalls + self.conn_disconnects + self.conn_resumes > 0 {
            write!(
                f,
                "; {} conn stalls, {} conn drops, {} resumes",
                self.conn_stalls, self.conn_disconnects, self.conn_resumes,
            )?;
        }
        Ok(())
    }
}

/// A transport 5-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowTuple {
    /// Source IP.
    pub src: Ipv4Addr,
    /// Source port.
    pub sport: u16,
    /// Destination IP.
    pub dst: Ipv4Addr,
    /// Destination port.
    pub dport: u16,
    /// IP protocol.
    pub proto: IpProto,
}

impl FlowTuple {
    /// Extracts the 5-tuple from a parsed flow key.
    pub fn from_key(key: &openflow::match_fields::FlowKey) -> FlowTuple {
        FlowTuple {
            src: key.nw_src,
            sport: key.tp_src,
            dst: key.nw_dst,
            dport: key.tp_dst,
            proto: key.nw_proto,
        }
    }
}

impl fmt::Display for FlowTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            self.proto, self.src, self.sport, self.dst, self.dport
        )
    }
}

/// One `PacketIn` report for a flow, at one switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopReport {
    /// Controller-side arrival time of the `PacketIn`.
    pub ts: Timestamp,
    /// Reporting switch.
    pub dpid: DatapathId,
    /// Ingress port at that switch.
    pub in_port: PortNo,
    /// Transaction id (pairs the `FlowMod` reply).
    pub xid: Xid,
    /// Send time of the paired `FlowMod`, when seen.
    pub flow_mod_ts: Option<Timestamp>,
    /// Egress port installed by the paired `FlowMod`, when seen.
    pub out_port: Option<PortNo>,
}

/// One flow episode: a 5-tuple's appearance in the network, from its
/// first `PacketIn` to its `FlowRemoved` counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// The flow's 5-tuple.
    pub tuple: FlowTuple,
    /// First `PacketIn` timestamp (the flow's appearance time).
    pub first_seen: Timestamp,
    /// `PacketIn`/`FlowMod` reports in time order, one per on-path switch.
    pub hops: Vec<HopReport>,
    /// Final byte count (max over per-switch `FlowRemoved`s).
    pub byte_count: u64,
    /// Final packet count.
    pub packet_count: u64,
    /// Flow-entry lifetime in seconds (from `FlowRemoved`).
    pub duration_s: f64,
}

impl FlowRecord {
    /// The dpid sequence of the flow's path, in traversal order.
    pub fn switch_path(&self) -> Vec<DatapathId> {
        self.hops.iter().map(|h| h.dpid).collect()
    }
}

/// Extracts flow records from a controller log.
///
/// Recurring 5-tuples are split into episodes when consecutive
/// `PacketIn`s are separated by more than `config.episode_gap_us`.
/// `FlowRemoved` counters attach to the latest episode that started
/// before them.
///
/// This is a thin wrapper over [`RecordAssembler`]: the whole log is
/// fed through the streaming state machine one event at a time. The
/// batch and streaming paths are one implementation.
pub fn extract_records(log: &ControllerLog, config: &FlowDiffConfig) -> Vec<FlowRecord> {
    let mut asm = RecordAssembler::new(config);
    for ev in log.events() {
        asm.observe(ev);
    }
    // A materialized log is time-sorted (`ControllerLog::finish`), so
    // any out-of-order count here means the assembler miscounted — a
    // bug, not bad input. (Other anomaly kinds are legitimate even in
    // sorted logs: xid collisions, orphan removals, and the like.)
    debug_assert_eq!(
        asm.health().events_reordered,
        0,
        "sorted log must never count out-of-order events"
    );
    asm.finish()
}

/// One in-flight flow episode inside the assembler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct OpenEpisode {
    /// Creation sequence number; pairs pending `FlowMod` patches with
    /// the episode they belong to even after sibling episodes close.
    seq: u64,
    record: FlowRecord,
    /// Latest event timestamp that touched this episode (hop, `FlowMod`
    /// patch, or `FlowRemoved`); drives idle eviction.
    last_activity: Timestamp,
}

/// Location of a hop that is still waiting for its `FlowMod` reply.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PendingHop {
    tuple: FlowTuple,
    seq: u64,
    hop_idx: usize,
    registered: Timestamp,
}

/// Streaming flow-record assembly: a state machine that consumes
/// control events one at a time and emits completed [`FlowRecord`]s
/// with bounded memory.
///
/// The assembler tracks three kinds of in-flight state, each evicted
/// once it falls idle past the horizon (`partial_flow_timeout_us`
/// clamped to at least `episode_gap_us`):
///
/// - **open episodes** — flows whose `PacketIn` hops are still
///   accumulating; evicted episodes are *emitted* (not dropped), so no
///   flow is ever lost,
/// - **seen `FlowMod`s** — xid → (send ts, installed output port),
///   first reply wins, consulted by `PacketIn`s arriving after the mod,
/// - **pending hops** — hops whose `FlowMod` has not arrived yet,
///   patched in place when it does.
///
/// Input events should be in non-decreasing time order (a
/// [`ControllerLog`] guarantees this); disordered input is *tolerated* —
/// counted in [`IngestHealth::events_reordered`] and, when
/// `reorder_slack_us > 0`, re-sequenced through a bounded buffer before
/// assembly. The result is identical to the historical whole-log
/// extraction as long as every event pairing with a flow arrives within
/// the horizon of the flow's last activity; a `FlowMod` or `FlowRemoved`
/// straggling in later than that no longer attaches. Because the
/// horizon is at least the episode gap, eviction can never merge two
/// episodes the batch extractor would split.
///
/// The assembler is the first of the three pieces of streaming state a
/// [`checkpoint`](crate::checkpoint) must capture, so the whole struct
/// — in-flight episodes, xid bookkeeping, the reorder buffer, health
/// counters — serializes; a deserialized assembler continues exactly
/// where the original stopped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordAssembler {
    episode_gap_us: u64,
    horizon_us: u64,
    /// Events within this much of the newest arrival are re-sequenced
    /// before assembly; `0` disables buffering entirely (zero-cost
    /// passthrough).
    reorder_slack_us: u64,
    /// Events jumping further than this beyond `max_arrival` are
    /// dropped as corrupt clock readings; `0` disables the check.
    max_time_jump_us: u64,
    /// xid -> first FlowMod seen for it; first wins.
    seen_mods: HashMap<Xid, SeenMod>,
    /// xid -> hops still waiting for that FlowMod.
    pending_mods: HashMap<Xid, Vec<PendingHop>>,
    /// Open episodes per tuple, oldest first. A flat hash map: every
    /// consumer of whole-state iteration (`finish`, the snapshot path)
    /// sorts by `(first_seen, tuple)` afterwards, so map order never
    /// reaches an output.
    open: HashMap<FlowTuple, Vec<OpenEpisode>>,
    next_seq: u64,
    completed: Vec<FlowRecord>,
    now: Timestamp,
    last_prune: Timestamp,
    /// Newest *arrival* timestamp (as opposed to `now`, the newest
    /// *processed* timestamp); drives out-of-order detection and the
    /// reorder buffer's release watermark.
    max_arrival: Timestamp,
    /// Held-back events awaiting re-sequencing, keyed by
    /// `(ts, arrival_seq)` so simultaneous events keep arrival order.
    /// Empty whenever `reorder_slack_us == 0`.
    reorder_buf: BTreeMap<(Timestamp, u64), ControlEvent>,
    arrival_seq: u64,
    health: IngestHealth,
}

/// The first `FlowMod` seen for an xid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct SeenMod {
    ts: Timestamp,
    out: Option<PortNo>,
    /// True once the mod matched at least one `PacketIn` hop; entries
    /// pruned without ever matching count as orphan FlowMods.
    used: bool,
}

impl RecordAssembler {
    /// New assembler using `config.episode_gap_us`,
    /// `config.partial_flow_timeout_us`, and `config.reorder_slack_us`.
    pub fn new(config: &FlowDiffConfig) -> RecordAssembler {
        RecordAssembler {
            episode_gap_us: config.episode_gap_us,
            horizon_us: config.partial_flow_timeout_us.max(config.episode_gap_us),
            reorder_slack_us: config.reorder_slack_us,
            max_time_jump_us: config.max_time_jump_us,
            seen_mods: HashMap::new(),
            pending_mods: HashMap::new(),
            open: HashMap::new(),
            next_seq: 0,
            completed: Vec::new(),
            now: Timestamp::ZERO,
            last_prune: Timestamp::ZERO,
            max_arrival: Timestamp::ZERO,
            reorder_buf: BTreeMap::new(),
            arrival_seq: 0,
            health: IngestHealth::default(),
        }
    }

    /// Ingestion health counters accumulated so far (event-level only;
    /// callers streaming from wire bytes fold in their
    /// [`LogStream`](netsim::log::LogStream) stats via
    /// [`IngestHealth::absorb_stream`]).
    pub fn health(&self) -> &IngestHealth {
        &self.health
    }

    /// Newest arrival timestamp seen so far (`Timestamp::ZERO` before
    /// the first event) — the assembler's notion of "now" on the
    /// arrival clock, used by restore-time bookkeeping.
    pub fn max_arrival(&self) -> Timestamp {
        self.max_arrival
    }

    /// True when `observe` would drop an event at `ts` as a corrupt
    /// clock reading (see `max_time_jump_us`). Callers that schedule
    /// work off event timestamps — the `OnlineDiffer`'s epoch clock —
    /// consult this *before* trusting the timestamp.
    pub fn quarantines(&self, ts: Timestamp) -> bool {
        self.max_time_jump_us > 0
            && ts
                .checked_since(self.max_arrival)
                .is_some_and(|jump| jump > self.max_time_jump_us)
    }

    /// Feeds one control event in, returning `false` when the event was
    /// quarantined (dropped for an implausible timestamp) instead of
    /// assembled. With `reorder_slack_us == 0` an admitted event goes
    /// straight through the state machine; otherwise it is held in the
    /// reorder buffer until the arrival watermark moves
    /// `reorder_slack_us` past its timestamp, so slightly disordered
    /// input is assembled in time order.
    pub fn observe(&mut self, ev: &ControlEvent) -> bool {
        if self.quarantines(ev.ts) {
            self.health.record(IngestAnomaly::TimeJump);
            return false;
        }
        if ev.ts < self.max_arrival {
            self.health.record(IngestAnomaly::OutOfOrder);
        } else {
            self.max_arrival = ev.ts;
        }
        if self.reorder_slack_us == 0 {
            self.process(ev);
            return true;
        }
        // Even a too-late event goes through the buffer: it is below
        // the release watermark, so it flushes right back out in this
        // call, sequenced as well as possible against its peers.
        self.reorder_buf
            .insert((ev.ts, self.arrival_seq), ev.clone());
        self.arrival_seq += 1;
        let release = Timestamp::from_micros(
            self.max_arrival
                .as_micros()
                .saturating_sub(self.reorder_slack_us),
        );
        while let Some(entry) = self.reorder_buf.first_entry() {
            if entry.key().0 > release {
                break;
            }
            let buffered = entry.remove();
            self.process(&buffered);
        }
        true
    }

    /// Runs one event through the assembly state machine (post
    /// re-sequencing).
    fn process(&mut self, ev: &ControlEvent) {
        if ev.ts > self.now {
            self.now = ev.ts;
        }
        match &ev.msg {
            OfpMessage::PacketIn(pi) => {
                let Ok(key) = frame::parse_frame(&pi.data) else {
                    return; // unparseable capture: skip, never fail
                };
                let tuple = FlowTuple::from_key(&key);
                self.on_packet_in(ev.ts, ev.dpid, ev.xid, pi.in_port, tuple);
            }
            OfpMessage::FlowMod(fm) => {
                let out = openflow::actions::first_output(&fm.actions);
                self.on_flow_mod(ev.ts, ev.xid, out);
            }
            OfpMessage::FlowRemoved(fr) => {
                let m = &fr.match_;
                let tuple = FlowTuple {
                    src: m.nw_src,
                    sport: m.tp_src,
                    dst: m.nw_dst,
                    dport: m.tp_dst,
                    proto: m.nw_proto,
                };
                self.on_flow_removed(
                    ev.ts,
                    tuple,
                    fr.byte_count,
                    fr.packet_count,
                    fr.duration_secs_f64(),
                );
            }
            _ => {}
        }
        if self.now.saturating_since(self.last_prune) > self.horizon_us {
            self.prune();
            self.last_prune = self.now;
        }
    }

    fn on_packet_in(
        &mut self,
        ts: Timestamp,
        dpid: DatapathId,
        xid: Xid,
        in_port: PortNo,
        tuple: FlowTuple,
    ) {
        let (fm_ts, out_port) = match self.seen_mods.get_mut(&xid) {
            Some(sm) => {
                sm.used = true;
                (Some(sm.ts), sm.out)
            }
            None => (None, None),
        };
        let hop = HopReport {
            ts,
            dpid,
            in_port,
            xid,
            flow_mod_ts: fm_ts,
            out_port,
        };
        let episodes = self.open.entry(tuple).or_default();
        let start_new = match episodes.last() {
            Some(ep) => {
                let last_ts = ep.record.hops.last().map_or(ep.record.first_seen, |h| h.ts);
                ts.saturating_since(last_ts) > self.episode_gap_us
            }
            None => true,
        };
        let (seq, hop_idx);
        if start_new {
            seq = self.next_seq;
            self.next_seq += 1;
            hop_idx = 0;
            episodes.push(OpenEpisode {
                seq,
                record: FlowRecord {
                    tuple,
                    first_seen: ts,
                    hops: vec![hop],
                    byte_count: 0,
                    packet_count: 0,
                    duration_s: 0.0,
                },
                last_activity: ts,
            });
        } else {
            let ep = episodes.last_mut().expect("just checked");
            ep.record.hops.push(hop);
            if ts > ep.last_activity {
                ep.last_activity = ts;
            }
            seq = ep.seq;
            hop_idx = ep.record.hops.len() - 1;
        }
        if fm_ts.is_none() {
            self.pending_mods.entry(xid).or_default().push(PendingHop {
                tuple,
                seq,
                hop_idx,
                registered: ts,
            });
        }
    }

    fn on_flow_mod(&mut self, ts: Timestamp, xid: Xid, out: Option<PortNo>) {
        use std::collections::hash_map::Entry;
        // First FlowMod per xid wins, matching the batch pre-scan.
        let Entry::Vacant(slot) = self.seen_mods.entry(xid) else {
            self.health.record(IngestAnomaly::DuplicateXid);
            return;
        };
        slot.insert(SeenMod {
            ts,
            out,
            used: false,
        });
        let Some(waiting) = self.pending_mods.remove(&xid) else {
            return;
        };
        // The xid matched real hops (even if some were since evicted):
        // this mod is not an orphan.
        if let Some(sm) = self.seen_mods.get_mut(&xid) {
            sm.used = true;
        }
        for p in waiting {
            let Some(episodes) = self.open.get_mut(&p.tuple) else {
                // episode already evicted: tolerated straggler
                self.health.record(IngestAnomaly::StaleAttach);
                continue;
            };
            let Some(ep) = episodes.iter_mut().find(|e| e.seq == p.seq) else {
                self.health.record(IngestAnomaly::StaleAttach);
                continue;
            };
            if let Some(h) = ep.record.hops.get_mut(p.hop_idx) {
                h.flow_mod_ts = Some(ts);
                h.out_port = out;
            }
            if ts > ep.last_activity {
                ep.last_activity = ts;
            }
        }
    }

    fn on_flow_removed(
        &mut self,
        ts: Timestamp,
        tuple: FlowTuple,
        byte_count: u64,
        packet_count: u64,
        duration_s: f64,
    ) {
        // Attach to the latest episode started before the removal;
        // counters merge with max over per-switch FlowRemoveds.
        let Some(episodes) = self.open.get_mut(&tuple) else {
            self.health.record(IngestAnomaly::OrphanFlowRemoved);
            return;
        };
        let Some(ep) = episodes
            .iter_mut()
            .rev()
            .find(|ep| ep.record.first_seen <= ts)
        else {
            self.health.record(IngestAnomaly::OrphanFlowRemoved);
            return;
        };
        ep.record.byte_count = ep.record.byte_count.max(byte_count);
        ep.record.packet_count = ep.record.packet_count.max(packet_count);
        ep.record.duration_s = ep.record.duration_s.max(duration_s);
        if ts > ep.last_activity {
            ep.last_activity = ts;
        }
    }

    /// Evicts state idle past the horizon. Idle episodes are *emitted*
    /// into the completed set; stale xid bookkeeping is dropped.
    fn prune(&mut self) {
        let now = self.now;
        let horizon = self.horizon_us;
        let mut evicted: Vec<FlowRecord> = Vec::new();
        self.open.retain(|_, episodes| {
            let mut i = 0;
            while i < episodes.len() {
                if now.saturating_since(episodes[i].last_activity) > horizon {
                    evicted.push(episodes.remove(i).record);
                } else {
                    i += 1;
                }
            }
            !episodes.is_empty()
        });
        self.health.episodes_evicted += evicted.len() as u64;
        self.completed.extend(evicted);
        let mut orphaned = 0u64;
        self.seen_mods.retain(|_, sm| {
            let keep = now.saturating_since(sm.ts) <= horizon;
            if !keep && !sm.used {
                orphaned += 1;
            }
            keep
        });
        for _ in 0..orphaned {
            self.health.record(IngestAnomaly::OrphanFlowMod);
        }
        self.pending_mods.retain(|_, hops| {
            hops.retain(|p| now.saturating_since(p.registered) <= horizon);
            !hops.is_empty()
        });
    }

    /// Takes the records completed (evicted) so far, leaving in-flight
    /// state untouched. Order is unspecified; callers that need the
    /// batch order sort by `(first_seen, tuple)`.
    pub fn take_completed(&mut self) -> Vec<FlowRecord> {
        std::mem::take(&mut self.completed)
    }

    /// Clones the current in-flight episodes as best-effort records —
    /// the live view an online consumer folds into its window model
    /// before the episodes finish.
    pub fn open_records(&self) -> Vec<FlowRecord> {
        self.open
            .values()
            .flat_map(|eps| eps.iter().map(|ep| ep.record.clone()))
            .collect()
    }

    /// Number of in-flight episodes (bounded-memory diagnostics).
    pub fn open_len(&self) -> usize {
        self.open.values().map(Vec::len).sum()
    }

    /// Number of completed records not yet taken.
    pub fn completed_len(&self) -> usize {
        self.completed.len()
    }

    /// Advances the assembler's processed-time clock without feeding an
    /// event, running the same prune check [`observe`](Self::observe)
    /// runs after a non-flow message.
    ///
    /// This is the shard worker's half of the splitter contract: a
    /// [`ShardRouter`] delivers every admitted event to every shard, and
    /// a shard whose state machine doesn't own the event still advances
    /// its clock with it, so each shard prunes on exactly the cadence
    /// the single-shard assembler would. (Eviction timing is load-
    /// bearing: it decides which straggling `FlowMod` replies still
    /// patch their episode, which is visible in the record bytes.)
    pub fn advance_clock(&mut self, ts: Timestamp) {
        if ts > self.now {
            self.now = ts;
        }
        if self.now.saturating_since(self.last_prune) > self.horizon_us {
            self.prune();
            self.last_prune = self.now;
        }
    }

    /// Advances the processed-time clock *without* the prune check —
    /// the exact effect of an unparseable `PacketIn`, whose early
    /// return skips pruning in [`observe`](Self::observe). Shards
    /// mirror that quirk so their prune cadence stays bit-for-bit on
    /// the single-shard schedule.
    pub fn advance_now(&mut self, ts: Timestamp) {
        if ts > self.now {
            self.now = ts;
        }
    }

    /// Drains everything: the reorder buffer is flushed, remaining open
    /// episodes are finalized, and the full record set is returned in
    /// `(first_seen, tuple)` order — exactly the batch extraction order.
    pub fn finish(mut self) -> Vec<FlowRecord> {
        let held: Vec<ControlEvent> = std::mem::take(&mut self.reorder_buf)
            .into_values()
            .collect();
        for ev in &held {
            self.process(ev);
        }
        let mut records = std::mem::take(&mut self.completed);
        records.extend(
            std::mem::take(&mut self.open)
                .into_values()
                .flatten()
                .map(|ep| ep.record),
        );
        records.sort_by_key(|r| (r.first_seen, r.tuple));
        records
    }
}

/// What kind of protocol conversation an event participates in, decided
/// once by the [`ShardRouter`] (which has to parse `PacketIn` payloads
/// to route them anyway) so neither the release-order ledger nor the N
/// shard workers re-parse the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventClass {
    /// A `PacketIn` whose payload parsed into a flow key; owned by the
    /// source host's shard.
    PacketIn,
    /// A `FlowMod`; processed in full by *every* shard so each replica
    /// of the xid table sees the same first-reply-wins outcome.
    FlowMod,
    /// A `FlowRemoved`; owned by the source host's shard (same key as
    /// the `PacketIn`s it closes).
    FlowRemoved,
    /// A `PacketIn` whose payload did not parse; advances every shard's
    /// clock without a prune check, mirroring the single-shard
    /// assembler's early return.
    OpaquePacketIn,
    /// Everything else (echoes, stats replies, ...); owned by the
    /// reporting switch's shard, advances every shard's clock.
    Other,
}

/// One admitted control event, annotated with its owning shard and
/// pre-computed [`EventClass`]. This is what the splitter releases —
/// the persistent pipeline wraps each release into a broadcast step
/// batch for its worker channels — and what a checkpoint's pending
/// chunk holds (a restored chunk is replayed into the fresh worker
/// pool as its first batch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedEvent {
    /// Index of the shard that owns this event's state machine work.
    pub shard: u32,
    /// Pre-computed classification (see [`EventClass`]).
    pub class: EventClass,
    /// The event itself.
    pub event: ControlEvent,
}

/// Ledger entry mirroring one [`RecordAssembler`] `SeenMod`: the first
/// `FlowMod` seen for an xid, and whether any `PacketIn` ever paired
/// with it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct LedgerMod {
    ts: Timestamp,
    used: bool,
}

/// The splitter in front of N shard [`RecordAssembler`]s: admits decoded
/// events, routes each to its owning shard, and keeps the *global*
/// ingest accounting that no single shard can see. It is the single
/// serial stage of the persistent pipeline — everything downstream of
/// its release order is replicated per worker, so admission here can
/// overlap the workers draining their queues.
///
/// The router owns everything arrival-ordered — the time-jump
/// quarantine, the out-of-order count, and the reorder buffer — so the
/// per-shard assemblers run with `reorder_slack_us = 0` and
/// `max_time_jump_us = 0` and consume already-sequenced events. It also
/// runs a release-order **xid ledger**, a faithful mirror of the
/// assembler's `seen_mods`/`pending_mods` lifecycle (same first-wins
/// rule, same prune cadence), because `duplicate_xids` and
/// `orphan_flow_mods` are global-by-xid facts: every shard processes
/// every `FlowMod`, so per-shard counts would multiply duplicates by N
/// and call a mod orphaned on every shard that doesn't own its
/// `PacketIn`s.
///
/// Routing is content-based and computed at arrival: a parseable
/// `PacketIn` belongs to its source host's shard, a `FlowRemoved` to the
/// source host in its match (the same key, so a tuple's episodes and its
/// removal meet on one shard), and everything else to the reporting
/// switch's shard (which keeps a port's stats series whole on one
/// shard). Hosts and switches are interned into the router's own dense
/// [`EntityCatalog`] and sharded by `id % n`, so shard placement is a
/// pure function of the arrival stream.
///
/// The router is part of the sharded pipeline's streaming state: it
/// serializes (catalog as its intern-ordered entity lists, re-interned
/// on decode) and compares by value, so a restored router admits,
/// routes, and counts exactly like the original.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    n_shards: u32,
    reorder_slack_us: u64,
    max_time_jump_us: u64,
    horizon_us: u64,
    /// Host/switch interning for shard placement only (records are
    /// re-interned from scratch at every model build).
    catalog: EntityCatalog,
    max_arrival: Timestamp,
    arrival_seq: u64,
    /// Held-back routed events awaiting re-sequencing; same keying as
    /// the assembler's buffer.
    reorder_buf: BTreeMap<(Timestamp, u64), RoutedEvent>,
    /// xid -> first FlowMod seen (release order); mirror of the
    /// assembler's `seen_mods`.
    ledger_mods: HashMap<Xid, LedgerMod>,
    /// xid -> PacketIn registration times still waiting for their
    /// FlowMod; mirror of `pending_mods` (only the timestamps matter
    /// here — the owning shard patches the actual hops).
    ledger_pending: HashMap<Xid, Vec<Timestamp>>,
    now: Timestamp,
    last_prune: Timestamp,
    /// Splitter-owned health: frame counters, reorders, time jumps, and
    /// the ledger's duplicate/orphan xid counts. Per-shard assemblers
    /// own eviction/removal/stale counts.
    health: IngestHealth,
}

impl ShardRouter {
    /// New router for `n_shards` workers, taking the arrival-side
    /// tolerances (`reorder_slack_us`, `max_time_jump_us`) and the
    /// ledger prune horizon from `config` exactly as
    /// [`RecordAssembler::new`] does.
    pub fn new(config: &FlowDiffConfig, n_shards: usize) -> ShardRouter {
        ShardRouter {
            n_shards: n_shards.max(1) as u32,
            reorder_slack_us: config.reorder_slack_us,
            max_time_jump_us: config.max_time_jump_us,
            horizon_us: config.partial_flow_timeout_us.max(config.episode_gap_us),
            catalog: EntityCatalog::default(),
            max_arrival: Timestamp::ZERO,
            arrival_seq: 0,
            reorder_buf: BTreeMap::new(),
            ledger_mods: HashMap::new(),
            ledger_pending: HashMap::new(),
            now: Timestamp::ZERO,
            last_prune: Timestamp::ZERO,
            health: IngestHealth::default(),
        }
    }

    /// Number of shards this router splits across.
    pub fn n_shards(&self) -> usize {
        self.n_shards as usize
    }

    /// Newest arrival timestamp admitted so far.
    pub fn max_arrival(&self) -> Timestamp {
        self.max_arrival
    }

    /// Splitter-owned health counters (see the struct docs for which
    /// fields are authoritative here vs. summed over shards).
    pub fn health(&self) -> &IngestHealth {
        &self.health
    }

    /// Folds frame-level stream stats into the global health picture.
    pub fn absorb_stream(&mut self, stats: netsim::log::StreamStats) {
        self.health.absorb_stream(stats);
    }

    /// True when [`admit`](Self::admit) would drop an event at `ts` as a
    /// corrupt clock reading — same rule as
    /// [`RecordAssembler::quarantines`].
    pub fn quarantines(&self, ts: Timestamp) -> bool {
        self.max_time_jump_us > 0
            && ts
                .checked_since(self.max_arrival)
                .is_some_and(|jump| jump > self.max_time_jump_us)
    }

    /// Admits one event: quarantine/out-of-order accounting, routing,
    /// then re-sequencing. Events released from the buffer (possibly
    /// including this one) are appended to `released` in assembly
    /// order, each already run through the xid ledger. Returns the
    /// admitted event's owning shard, or `None` when the event was
    /// quarantined (callers feed arrival-ordered per-shard state — the
    /// model builders — off this return value).
    pub fn admit(&mut self, ev: &ControlEvent, released: &mut Vec<RoutedEvent>) -> Option<u32> {
        if self.quarantines(ev.ts) {
            self.health.record(IngestAnomaly::TimeJump);
            return None;
        }
        if ev.ts < self.max_arrival {
            self.health.record(IngestAnomaly::OutOfOrder);
        } else {
            self.max_arrival = ev.ts;
        }
        let (shard, class) = self.route(ev);
        let routed = RoutedEvent {
            shard,
            class,
            event: ev.clone(),
        };
        if self.reorder_slack_us == 0 {
            self.ledger_process(&routed);
            released.push(routed);
            return Some(shard);
        }
        self.reorder_buf.insert((ev.ts, self.arrival_seq), routed);
        self.arrival_seq += 1;
        let release = Timestamp::from_micros(
            self.max_arrival
                .as_micros()
                .saturating_sub(self.reorder_slack_us),
        );
        while let Some(entry) = self.reorder_buf.first_entry() {
            if entry.key().0 > release {
                break;
            }
            let r = entry.remove();
            self.ledger_process(&r);
            released.push(r);
        }
        Some(shard)
    }

    /// Flushes the reorder buffer (end of stream), returning the held
    /// events in release order, ledger-processed — the router half of
    /// [`RecordAssembler::finish`].
    pub fn drain(&mut self) -> Vec<RoutedEvent> {
        let held: Vec<RoutedEvent> = std::mem::take(&mut self.reorder_buf)
            .into_values()
            .collect();
        for r in &held {
            self.ledger_process(r);
        }
        held
    }

    /// Computes `(owning shard, class)` for one event, interning any
    /// new entity it names.
    fn route(&mut self, ev: &ControlEvent) -> (u32, EventClass) {
        let n = self.n_shards as usize;
        match &ev.msg {
            OfpMessage::PacketIn(pi) => match frame::parse_frame(&pi.data) {
                Ok(key) => {
                    let id = self.catalog.intern_host(key.nw_src);
                    (
                        shard_of(ShardKey::of_host(id), n) as u32,
                        EventClass::PacketIn,
                    )
                }
                Err(_) => {
                    let id = self.catalog.intern_switch(ev.dpid);
                    (
                        shard_of(ShardKey::of_switch(id), n) as u32,
                        EventClass::OpaquePacketIn,
                    )
                }
            },
            OfpMessage::FlowMod(_) => {
                let id = self.catalog.intern_switch(ev.dpid);
                (
                    shard_of(ShardKey::of_switch(id), n) as u32,
                    EventClass::FlowMod,
                )
            }
            OfpMessage::FlowRemoved(fr) => {
                let id = self.catalog.intern_host(fr.match_.nw_src);
                (
                    shard_of(ShardKey::of_host(id), n) as u32,
                    EventClass::FlowRemoved,
                )
            }
            _ => {
                let id = self.catalog.intern_switch(ev.dpid);
                (
                    shard_of(ShardKey::of_switch(id), n) as u32,
                    EventClass::Other,
                )
            }
        }
    }

    /// Runs one released event through the xid ledger, keeping its
    /// clock, match rules, and prune cadence in lockstep with what a
    /// single-shard assembler would do for the same release sequence.
    fn ledger_process(&mut self, r: &RoutedEvent) {
        let ts = r.event.ts;
        if ts > self.now {
            self.now = ts;
        }
        match r.class {
            EventClass::PacketIn => match self.ledger_mods.get_mut(&r.event.xid) {
                Some(m) => m.used = true,
                None => self.ledger_pending.entry(r.event.xid).or_default().push(ts),
            },
            EventClass::FlowMod => {
                use std::collections::hash_map::Entry;
                match self.ledger_mods.entry(r.event.xid) {
                    Entry::Vacant(slot) => {
                        let used = self.ledger_pending.remove(&r.event.xid).is_some();
                        slot.insert(LedgerMod { ts, used });
                    }
                    Entry::Occupied(_) => {
                        self.health.record(IngestAnomaly::DuplicateXid);
                    }
                }
            }
            // Mirror the assembler's early return: no prune check.
            EventClass::OpaquePacketIn => return,
            EventClass::FlowRemoved | EventClass::Other => {}
        }
        if self.now.saturating_since(self.last_prune) > self.horizon_us {
            self.ledger_prune();
            self.last_prune = self.now;
        }
    }

    /// Ages out ledger entries on the assembler's schedule, counting
    /// never-used mods as orphans.
    fn ledger_prune(&mut self) {
        let now = self.now;
        let horizon = self.horizon_us;
        let mut orphaned = 0u64;
        self.ledger_mods.retain(|_, m| {
            let keep = now.saturating_since(m.ts) <= horizon;
            if !keep && !m.used {
                orphaned += 1;
            }
            keep
        });
        for _ in 0..orphaned {
            self.health.record(IngestAnomaly::OrphanFlowMod);
        }
        self.ledger_pending.retain(|_, regs| {
            regs.retain(|r| now.saturating_since(*r) <= horizon);
            !regs.is_empty()
        });
    }

    /// Rough heap footprint of the router's own state.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.catalog.approx_bytes()
            + self.reorder_buf.len() * (size_of::<(Timestamp, u64)>() + size_of::<RoutedEvent>())
            + self.ledger_mods.len() * size_of::<(Xid, LedgerMod)>()
            + self
                .ledger_pending
                .values()
                .map(|v| size_of::<Xid>() + v.len() * size_of::<Timestamp>())
                .sum::<usize>()
    }
}

impl PartialEq for ShardRouter {
    fn eq(&self, other: &ShardRouter) -> bool {
        // The catalog has no PartialEq of its own; its intern-ordered
        // entity lists are its full observable state.
        self.n_shards == other.n_shards
            && self.reorder_slack_us == other.reorder_slack_us
            && self.max_time_jump_us == other.max_time_jump_us
            && self.horizon_us == other.horizon_us
            && self.catalog.hosts() == other.catalog.hosts()
            && self.catalog.switches() == other.catalog.switches()
            && self.max_arrival == other.max_arrival
            && self.arrival_seq == other.arrival_seq
            && self.reorder_buf == other.reorder_buf
            && self.ledger_mods == other.ledger_mods
            && self.ledger_pending == other.ledger_pending
            && self.now == other.now
            && self.last_prune == other.last_prune
            && self.health == other.health
    }
}

impl Serialize for ShardRouter {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.n_shards.serialize(out);
        self.reorder_slack_us.serialize(out);
        self.max_time_jump_us.serialize(out);
        self.horizon_us.serialize(out);
        // The catalog round-trips as its intern-ordered entity lists.
        self.catalog.hosts().serialize(out);
        self.catalog.switches().serialize(out);
        self.max_arrival.serialize(out);
        self.arrival_seq.serialize(out);
        self.reorder_buf.serialize(out);
        self.ledger_mods.serialize(out);
        self.ledger_pending.serialize(out);
        self.now.serialize(out);
        self.last_prune.serialize(out);
        self.health.serialize(out);
    }
}

impl Deserialize for ShardRouter {
    fn deserialize(input: &mut &[u8]) -> Result<Self, serde::Error> {
        let n_shards = u32::deserialize(input)?;
        let reorder_slack_us = u64::deserialize(input)?;
        let max_time_jump_us = u64::deserialize(input)?;
        let horizon_us = u64::deserialize(input)?;
        let hosts = Vec::<Ipv4Addr>::deserialize(input)?;
        let switches = Vec::<DatapathId>::deserialize(input)?;
        let mut catalog = EntityCatalog::default();
        for ip in hosts {
            catalog.intern_host(ip);
        }
        for dpid in switches {
            catalog.intern_switch(dpid);
        }
        Ok(ShardRouter {
            n_shards,
            reorder_slack_us,
            max_time_jump_us,
            horizon_us,
            catalog,
            max_arrival: Timestamp::deserialize(input)?,
            arrival_seq: u64::deserialize(input)?,
            reorder_buf: BTreeMap::deserialize(input)?,
            ledger_mods: HashMap::deserialize(input)?,
            ledger_pending: HashMap::deserialize(input)?,
            now: Timestamp::deserialize(input)?,
            last_prune: Timestamp::deserialize(input)?,
            health: IngestHealth::deserialize(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::config::SimConfig;
    use netsim::engine::Simulation;
    use netsim::flows::FlowSpec;
    use netsim::topology::Topology;
    use openflow::match_fields::FlowKey;
    use openflow::messages::OfpMessage;

    fn line_topology() -> Topology {
        let mut t = Topology::new();
        let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 0, 1));
        let h2 = t.add_host("h2", Ipv4Addr::new(10, 0, 0, 2));
        let s1 = t.add_of_switch("s1");
        let s2 = t.add_of_switch("s2");
        let s3 = t.add_of_switch("s3");
        t.connect(h1, s1, 50, 1_000_000_000);
        t.connect(s1, s2, 20, 1_000_000_000);
        t.connect(s2, s3, 20, 1_000_000_000);
        t.connect(s3, h2, 50, 1_000_000_000);
        t
    }

    fn key(sport: u16) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            sport,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        )
    }

    #[test]
    fn one_record_per_flow_with_full_path() {
        let mut sim = Simulation::new(line_topology(), SimConfig::default(), 1);
        sim.schedule_flow(
            Timestamp::from_secs(1),
            FlowSpec::new(key(4000), 6_000, 5_000),
        );
        sim.run_until(Timestamp::from_secs(30));
        let log = sim.take_log();
        let records = extract_records(&log, &FlowDiffConfig::default());
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.hops.len(), 3, "three OF switches on path");
        assert_eq!(r.tuple.dport, 80);
        assert!(r.hops.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert!(r.hops.iter().all(|h| h.flow_mod_ts.is_some()));
        assert!(r.hops.iter().all(|h| h.out_port.is_some()));
        assert_eq!(r.byte_count, 6_000);
        assert!(r.duration_s > 4.9, "lifetime includes the idle timeout");
    }

    #[test]
    fn episodes_split_on_gap() {
        let mut sim = Simulation::new(line_topology(), SimConfig::default(), 1);
        // Same 5-tuple, 60 s apart (entries expire in between).
        sim.schedule_flow(
            Timestamp::from_secs(1),
            FlowSpec::new(key(4000), 3_000, 5_000),
        );
        sim.schedule_flow(
            Timestamp::from_secs(61),
            FlowSpec::new(key(4000), 3_000, 5_000),
        );
        sim.run_until(Timestamp::from_secs(120));
        let log = sim.take_log();
        let records = extract_records(&log, &FlowDiffConfig::default());
        assert_eq!(records.len(), 2, "two episodes of the same tuple");
        assert!(records[0].first_seen < records[1].first_seen);
        assert_eq!(records[0].byte_count, 3_000);
        assert_eq!(records[1].byte_count, 3_000);
    }

    #[test]
    fn concurrent_flows_keep_separate_records() {
        let mut sim = Simulation::new(line_topology(), SimConfig::default(), 1);
        for sport in [4000, 4001, 4002] {
            sim.schedule_flow(
                Timestamp::from_secs(1),
                FlowSpec::new(key(sport), 2_000, 5_000),
            );
        }
        sim.run_until(Timestamp::from_secs(30));
        let log = sim.take_log();
        let records = extract_records(&log, &FlowDiffConfig::default());
        assert_eq!(records.len(), 3);
        let mut sports: Vec<u16> = records.iter().map(|r| r.tuple.sport).collect();
        sports.sort_unstable();
        assert_eq!(sports, vec![4000, 4001, 4002]);
    }

    #[test]
    fn extraction_survives_corrupt_capture() {
        let mut sim = Simulation::new(line_topology(), SimConfig::default(), 1);
        sim.schedule_flow(
            Timestamp::from_secs(1),
            FlowSpec::new(key(4000), 2_000, 5_000),
        );
        sim.run_until(Timestamp::from_secs(30));
        let mut log = sim.take_log();
        // Corrupt one PacketIn's payload.
        let mut events: Vec<_> = log.events().to_vec();
        for e in &mut events {
            if let OfpMessage::PacketIn(pi) = &mut e.msg {
                pi.data.truncate(4);
                break;
            }
        }
        log = events.into_iter().collect();
        let records = extract_records(&log, &FlowDiffConfig::default());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].hops.len(), 2, "corrupt hop skipped");
    }

    #[test]
    fn assembler_with_midstream_drain_matches_batch() {
        let mut sim = Simulation::new(line_topology(), SimConfig::default(), 1);
        for (i, sport) in [4000u16, 4001, 4002, 4003].iter().enumerate() {
            sim.schedule_flow(
                Timestamp::from_secs(1 + 20 * i as u64),
                FlowSpec::new(key(*sport), 3_000, 5_000),
            );
        }
        sim.run_until(Timestamp::from_secs(120));
        let log = sim.take_log();
        let config = FlowDiffConfig::default();
        let batch = extract_records(&log, &config);

        // Stream the same events, draining completed records as we go —
        // the way an online consumer uses the assembler.
        let mut asm = RecordAssembler::new(&config);
        let mut streamed: Vec<FlowRecord> = Vec::new();
        for (i, ev) in log.events().iter().enumerate() {
            asm.observe(ev);
            if i % 7 == 0 {
                streamed.extend(asm.take_completed());
            }
        }
        streamed.extend(asm.finish());
        streamed.sort_by_key(|r| (r.first_seen, r.tuple));
        assert_eq!(streamed, batch);
    }

    #[test]
    fn assembler_evicts_idle_partials_and_stays_bounded() {
        let mut sim = Simulation::new(line_topology(), SimConfig::default(), 1);
        // Two episodes of the same tuple, 60 s apart.
        sim.schedule_flow(
            Timestamp::from_secs(1),
            FlowSpec::new(key(4000), 3_000, 5_000),
        );
        sim.schedule_flow(
            Timestamp::from_secs(61),
            FlowSpec::new(key(4000), 3_000, 5_000),
        );
        sim.run_until(Timestamp::from_secs(120));
        let log = sim.take_log();

        // A 10 s timeout is far shorter than the 60 s quiet stretch, so
        // the first episode must be evicted (emitted) mid-stream, yet
        // every event still pairs within the horizon: the result must
        // match the default-timeout batch extraction.
        let tight = FlowDiffConfig {
            partial_flow_timeout_us: 10_000_000,
            ..FlowDiffConfig::default()
        };
        let mut asm = RecordAssembler::new(&tight);
        let mut evicted_midstream = 0;
        for ev in log.events() {
            asm.observe(ev);
            evicted_midstream = evicted_midstream.max(asm.completed_len());
        }
        assert!(
            evicted_midstream >= 1,
            "first episode should be emitted before the stream ends"
        );
        assert!(asm.open_len() <= 1, "only the live episode stays in-flight");
        let streamed = {
            let mut v = asm.finish();
            v.sort_by_key(|r| (r.first_seen, r.tuple));
            v
        };
        let batch = extract_records(&log, &FlowDiffConfig::default());
        assert_eq!(streamed, batch);
    }

    #[test]
    fn open_records_expose_in_flight_view() {
        let mut sim = Simulation::new(line_topology(), SimConfig::default(), 1);
        sim.schedule_flow(
            Timestamp::from_secs(1),
            FlowSpec::new(key(4000), 6_000, 5_000),
        );
        sim.run_until(Timestamp::from_secs(30));
        let log = sim.take_log();
        let mut asm = RecordAssembler::new(&FlowDiffConfig::default());
        // Feed only the PacketIn/FlowMod prefix (stop at FlowRemoved).
        for ev in log.events() {
            if matches!(ev.msg, OfpMessage::FlowRemoved(_)) {
                break;
            }
            asm.observe(ev);
        }
        let view = asm.open_records();
        assert_eq!(view.len(), 1);
        assert_eq!(view[0].hops.len(), 3, "all hops visible before completion");
        assert_eq!(view[0].byte_count, 0, "counters not yet attached");
        assert_eq!(asm.completed_len(), 0);
    }

    #[test]
    fn time_jump_quarantine_drops_corrupt_clock_readings() {
        let mut sim = Simulation::new(line_topology(), SimConfig::default(), 1);
        sim.schedule_flow(
            Timestamp::from_secs(1),
            FlowSpec::new(key(4000), 6_000, 5_000),
        );
        sim.run_until(Timestamp::from_secs(30));
        let log = sim.take_log();
        let batch = extract_records(&log, &FlowDiffConfig::default());

        // A bit flip in a wire timestamp mints an event eons ahead.
        let mut corrupt = log.events()[0].clone();
        corrupt.ts = Timestamp::from_micros(corrupt.ts.as_micros() + (1 << 50));

        let guarded = FlowDiffConfig {
            max_time_jump_us: 60_000_000,
            ..FlowDiffConfig::default()
        };
        let mut asm = RecordAssembler::new(&guarded);
        for (i, ev) in log.events().iter().enumerate() {
            assert!(asm.observe(ev), "clean events must be admitted");
            if i == 0 {
                assert!(asm.quarantines(corrupt.ts));
                assert!(!asm.observe(&corrupt), "insane jump must be dropped");
            }
        }
        assert_eq!(asm.health().time_jumps, 1);
        assert_eq!(
            asm.health().events_reordered,
            0,
            "a dropped jump must not poison the arrival watermark"
        );
        let mut streamed = asm.finish();
        streamed.sort_by_key(|r| (r.first_seen, r.tuple));
        assert_eq!(streamed, batch, "records unaffected by the dropped event");

        // Disabled (the default), the same event is admitted.
        let mut unguarded = RecordAssembler::new(&FlowDiffConfig::default());
        assert!(!unguarded.quarantines(corrupt.ts));
        assert!(unguarded.observe(&corrupt));
        assert_eq!(unguarded.health().time_jumps, 0);
    }

    #[test]
    fn switch_path_in_traversal_order() {
        let t = line_topology();
        let dpids: Vec<DatapathId> = ["s1", "s2", "s3"]
            .iter()
            .map(|n| t.dpid_of(t.node_by_name(n).unwrap()).unwrap())
            .collect();
        let mut sim = Simulation::new(t, SimConfig::default(), 1);
        sim.schedule_flow(
            Timestamp::from_secs(1),
            FlowSpec::new(key(4000), 2_000, 5_000),
        );
        sim.run_until(Timestamp::from_secs(30));
        let log = sim.take_log();
        let records = extract_records(&log, &FlowDiffConfig::default());
        assert_eq!(records[0].switch_path(), dpids);
    }

    /// A capture with several flows, used by the router tests.
    fn busy_log() -> ControllerLog {
        let mut sim = Simulation::new(line_topology(), SimConfig::default(), 1);
        for (i, sport) in [4000u16, 4001, 4002, 4003].iter().enumerate() {
            sim.schedule_flow(
                Timestamp::from_secs(1 + 15 * i as u64),
                FlowSpec::new(key(*sport), 3_000, 5_000),
            );
        }
        sim.run_until(Timestamp::from_secs(120));
        sim.take_log()
    }

    #[test]
    fn router_classifies_and_routes_deterministically() {
        let log = busy_log();
        let config = FlowDiffConfig::default();
        let mut a = ShardRouter::new(&config, 3);
        let mut b = ShardRouter::new(&config, 3);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for ev in log.events() {
            assert!(a.admit(ev, &mut out_a).is_some());
            assert!(b.admit(ev, &mut out_b).is_some());
        }
        out_a.extend(a.drain());
        out_b.extend(b.drain());
        assert_eq!(out_a, out_b, "routing is a pure function of the stream");
        assert_eq!(out_a.len(), log.events().len());
        assert!(out_a.iter().all(|r| (r.shard as usize) < 3));
        // PacketIns of one tuple and its FlowRemoved land on one shard.
        use std::collections::HashMap as Map;
        let mut flow_shards: Map<Ipv4Addr, std::collections::BTreeSet<u32>> = Map::new();
        for r in &out_a {
            match (&r.class, &r.event.msg) {
                (EventClass::PacketIn, OfpMessage::PacketIn(pi)) => {
                    let k = frame::parse_frame(&pi.data).unwrap();
                    flow_shards.entry(k.nw_src).or_default().insert(r.shard);
                }
                (EventClass::FlowRemoved, OfpMessage::FlowRemoved(fr)) => {
                    flow_shards
                        .entry(fr.match_.nw_src)
                        .or_default()
                        .insert(r.shard);
                }
                _ => {}
            }
        }
        assert!(!flow_shards.is_empty());
        assert!(
            flow_shards.values().all(|shards| shards.len() == 1),
            "a flow's episodes and removals must meet on one shard"
        );
    }

    #[test]
    fn router_ledger_matches_single_assembler_xid_accounting() {
        let log = busy_log();
        // Exercise the reorder buffer too.
        let config = FlowDiffConfig {
            reorder_slack_us: 50_000,
            ..FlowDiffConfig::default()
        };
        let mut asm = RecordAssembler::new(&config);
        let mut router = ShardRouter::new(&config, 4);
        let mut released = Vec::new();
        for ev in log.events() {
            asm.observe(ev);
            router.admit(ev, &mut released);
        }
        // Both sides have processed the identical released prefix (same
        // watermark rule), so the splitter-owned counters must agree.
        let ah = *asm.health();
        let rh = router.health();
        assert_eq!(rh.events_reordered, ah.events_reordered);
        assert_eq!(rh.duplicate_xids, ah.duplicate_xids);
        assert_eq!(rh.orphan_flow_mods, ah.orphan_flow_mods);
        assert_eq!(rh.time_jumps, ah.time_jumps);
        let n_events = log.events().len();
        released.extend(router.drain());
        assert_eq!(released.len(), n_events, "drain flushes the buffer");
    }

    #[test]
    fn router_quarantines_and_serializes_midstream() {
        let log = busy_log();
        let config = FlowDiffConfig {
            max_time_jump_us: 60_000_000,
            reorder_slack_us: 10_000,
            ..FlowDiffConfig::default()
        };
        let mut router = ShardRouter::new(&config, 2);
        let mut released = Vec::new();
        for (i, ev) in log.events().iter().enumerate() {
            assert!(router.admit(ev, &mut released).is_some());
            if i == 3 {
                let mut corrupt = ev.clone();
                corrupt.ts = Timestamp::from_micros(corrupt.ts.as_micros() + (1 << 50));
                assert!(router.quarantines(corrupt.ts));
                assert!(router.admit(&corrupt, &mut released).is_none());
            }
            if i == 5 {
                // Mid-stream, buffer non-empty: must round-trip.
                let bytes = serde::to_vec(&router);
                let back: ShardRouter = serde::from_slice(&bytes).unwrap();
                assert_eq!(back, router);
            }
        }
        assert_eq!(router.health().time_jumps, 1);
    }
}
