//! Flow record extraction from the controller log.
//!
//! FlowDiff's signatures are built not from raw control messages but from
//! *flow records*: one record per flow episode, collecting the flow's
//! 5-tuple, the time-ordered `PacketIn` reports from every switch on its
//! path, the `FlowMod` replies, and the final counters from
//! `FlowRemoved`.

use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

use netsim::log::ControllerLog;
use openflow::frame;
use openflow::types::{DatapathId, IpProto, PortNo, Timestamp, Xid};
use serde::{Deserialize, Serialize};

use crate::config::FlowDiffConfig;

/// A transport 5-tuple identifying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowTuple {
    /// Source IP.
    pub src: Ipv4Addr,
    /// Source port.
    pub sport: u16,
    /// Destination IP.
    pub dst: Ipv4Addr,
    /// Destination port.
    pub dport: u16,
    /// IP protocol.
    pub proto: IpProto,
}

impl FlowTuple {
    /// Extracts the 5-tuple from a parsed flow key.
    pub fn from_key(key: &openflow::match_fields::FlowKey) -> FlowTuple {
        FlowTuple {
            src: key.nw_src,
            sport: key.tp_src,
            dst: key.nw_dst,
            dport: key.tp_dst,
            proto: key.nw_proto,
        }
    }
}

impl fmt::Display for FlowTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} -> {}:{}",
            self.proto, self.src, self.sport, self.dst, self.dport
        )
    }
}

/// One `PacketIn` report for a flow, at one switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopReport {
    /// Controller-side arrival time of the `PacketIn`.
    pub ts: Timestamp,
    /// Reporting switch.
    pub dpid: DatapathId,
    /// Ingress port at that switch.
    pub in_port: PortNo,
    /// Transaction id (pairs the `FlowMod` reply).
    pub xid: Xid,
    /// Send time of the paired `FlowMod`, when seen.
    pub flow_mod_ts: Option<Timestamp>,
    /// Egress port installed by the paired `FlowMod`, when seen.
    pub out_port: Option<PortNo>,
}

/// One flow episode: a 5-tuple's appearance in the network, from its
/// first `PacketIn` to its `FlowRemoved` counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// The flow's 5-tuple.
    pub tuple: FlowTuple,
    /// First `PacketIn` timestamp (the flow's appearance time).
    pub first_seen: Timestamp,
    /// `PacketIn`/`FlowMod` reports in time order, one per on-path switch.
    pub hops: Vec<HopReport>,
    /// Final byte count (max over per-switch `FlowRemoved`s).
    pub byte_count: u64,
    /// Final packet count.
    pub packet_count: u64,
    /// Flow-entry lifetime in seconds (from `FlowRemoved`).
    pub duration_s: f64,
}

impl FlowRecord {
    /// The dpid sequence of the flow's path, in traversal order.
    pub fn switch_path(&self) -> Vec<DatapathId> {
        self.hops.iter().map(|h| h.dpid).collect()
    }
}

/// Extracts flow records from a controller log.
///
/// Recurring 5-tuples are split into episodes when consecutive
/// `PacketIn`s are separated by more than `config.episode_gap_us`.
/// `FlowRemoved` counters attach to the latest episode that started
/// before them.
pub fn extract_records(log: &ControllerLog, config: &FlowDiffConfig) -> Vec<FlowRecord> {
    // xid -> (flow_mod send ts, installed output port)
    let mut mods: HashMap<Xid, (Timestamp, Option<PortNo>)> = HashMap::new();
    for (ts, _, xid, fm) in log.flow_mods() {
        let out = openflow::actions::first_output(&fm.actions);
        mods.entry(xid).or_insert((ts, out));
    }

    let mut by_tuple: HashMap<FlowTuple, Vec<FlowRecord>> = HashMap::new();
    for (ts, dpid, xid, pi) in log.packet_ins() {
        let Ok(key) = frame::parse_frame(&pi.data) else {
            continue; // unparseable capture: skip, never fail extraction
        };
        let tuple = FlowTuple::from_key(&key);
        let (fm_ts, out_port) = match mods.get(&xid) {
            Some((t, p)) => (Some(*t), *p),
            None => (None, None),
        };
        let hop = HopReport {
            ts,
            dpid,
            in_port: pi.in_port,
            xid,
            flow_mod_ts: fm_ts,
            out_port,
        };
        let episodes = by_tuple.entry(tuple).or_default();
        let start_new = match episodes.last() {
            Some(ep) => {
                let last_ts = ep.hops.last().map_or(ep.first_seen, |h| h.ts);
                ts.saturating_since(last_ts) > config.episode_gap_us
            }
            None => true,
        };
        if start_new {
            episodes.push(FlowRecord {
                tuple,
                first_seen: ts,
                hops: vec![hop],
                byte_count: 0,
                packet_count: 0,
                duration_s: 0.0,
            });
        } else {
            episodes.last_mut().expect("just checked").hops.push(hop);
        }
    }

    // Attach FlowRemoved counters to the latest episode started before
    // the removal.
    for (ts, _, fr) in log.flow_removeds() {
        let m = &fr.match_;
        let tuple = FlowTuple {
            src: m.nw_src,
            sport: m.tp_src,
            dst: m.nw_dst,
            dport: m.tp_dst,
            proto: m.nw_proto,
        };
        if let Some(episodes) = by_tuple.get_mut(&tuple) {
            if let Some(ep) = episodes.iter_mut().rev().find(|ep| ep.first_seen <= ts) {
                ep.byte_count = ep.byte_count.max(fr.byte_count);
                ep.packet_count = ep.packet_count.max(fr.packet_count);
                ep.duration_s = ep.duration_s.max(fr.duration_secs_f64());
            }
        }
    }

    let mut records: Vec<FlowRecord> = by_tuple.into_values().flatten().collect();
    records.sort_by_key(|r| (r.first_seen, r.tuple));
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::config::SimConfig;
    use netsim::engine::Simulation;
    use netsim::flows::FlowSpec;
    use netsim::topology::Topology;
    use openflow::match_fields::FlowKey;
    use openflow::messages::OfpMessage;

    fn line_topology() -> Topology {
        let mut t = Topology::new();
        let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 0, 1));
        let h2 = t.add_host("h2", Ipv4Addr::new(10, 0, 0, 2));
        let s1 = t.add_of_switch("s1");
        let s2 = t.add_of_switch("s2");
        let s3 = t.add_of_switch("s3");
        t.connect(h1, s1, 50, 1_000_000_000);
        t.connect(s1, s2, 20, 1_000_000_000);
        t.connect(s2, s3, 20, 1_000_000_000);
        t.connect(s3, h2, 50, 1_000_000_000);
        t
    }

    fn key(sport: u16) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            sport,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        )
    }

    #[test]
    fn one_record_per_flow_with_full_path() {
        let mut sim = Simulation::new(line_topology(), SimConfig::default(), 1);
        sim.schedule_flow(
            Timestamp::from_secs(1),
            FlowSpec::new(key(4000), 6_000, 5_000),
        );
        sim.run_until(Timestamp::from_secs(30));
        let log = sim.take_log();
        let records = extract_records(&log, &FlowDiffConfig::default());
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.hops.len(), 3, "three OF switches on path");
        assert_eq!(r.tuple.dport, 80);
        assert!(r.hops.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert!(r.hops.iter().all(|h| h.flow_mod_ts.is_some()));
        assert!(r.hops.iter().all(|h| h.out_port.is_some()));
        assert_eq!(r.byte_count, 6_000);
        assert!(r.duration_s > 4.9, "lifetime includes the idle timeout");
    }

    #[test]
    fn episodes_split_on_gap() {
        let mut sim = Simulation::new(line_topology(), SimConfig::default(), 1);
        // Same 5-tuple, 60 s apart (entries expire in between).
        sim.schedule_flow(
            Timestamp::from_secs(1),
            FlowSpec::new(key(4000), 3_000, 5_000),
        );
        sim.schedule_flow(
            Timestamp::from_secs(61),
            FlowSpec::new(key(4000), 3_000, 5_000),
        );
        sim.run_until(Timestamp::from_secs(120));
        let log = sim.take_log();
        let records = extract_records(&log, &FlowDiffConfig::default());
        assert_eq!(records.len(), 2, "two episodes of the same tuple");
        assert!(records[0].first_seen < records[1].first_seen);
        assert_eq!(records[0].byte_count, 3_000);
        assert_eq!(records[1].byte_count, 3_000);
    }

    #[test]
    fn concurrent_flows_keep_separate_records() {
        let mut sim = Simulation::new(line_topology(), SimConfig::default(), 1);
        for sport in [4000, 4001, 4002] {
            sim.schedule_flow(
                Timestamp::from_secs(1),
                FlowSpec::new(key(sport), 2_000, 5_000),
            );
        }
        sim.run_until(Timestamp::from_secs(30));
        let log = sim.take_log();
        let records = extract_records(&log, &FlowDiffConfig::default());
        assert_eq!(records.len(), 3);
        let mut sports: Vec<u16> = records.iter().map(|r| r.tuple.sport).collect();
        sports.sort_unstable();
        assert_eq!(sports, vec![4000, 4001, 4002]);
    }

    #[test]
    fn extraction_survives_corrupt_capture() {
        let mut sim = Simulation::new(line_topology(), SimConfig::default(), 1);
        sim.schedule_flow(
            Timestamp::from_secs(1),
            FlowSpec::new(key(4000), 2_000, 5_000),
        );
        sim.run_until(Timestamp::from_secs(30));
        let mut log = sim.take_log();
        // Corrupt one PacketIn's payload.
        let mut events: Vec<_> = log.events().to_vec();
        for e in &mut events {
            if let OfpMessage::PacketIn(pi) = &mut e.msg {
                pi.data.truncate(4);
                break;
            }
        }
        log = events.into_iter().collect();
        let records = extract_records(&log, &FlowDiffConfig::default());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].hops.len(), 2, "corrupt hop skipped");
    }

    #[test]
    fn switch_path_in_traversal_order() {
        let t = line_topology();
        let dpids: Vec<DatapathId> = ["s1", "s2", "s3"]
            .iter()
            .map(|n| t.dpid_of(t.node_by_name(n).unwrap()).unwrap())
            .collect();
        let mut sim = Simulation::new(t, SimConfig::default(), 1);
        sim.schedule_flow(
            Timestamp::from_secs(1),
            FlowSpec::new(key(4000), 2_000, 5_000),
        );
        sim.run_until(Timestamp::from_secs(30));
        let log = sim.take_log();
        let records = extract_records(&log, &FlowDiffConfig::default());
        assert_eq!(records[0].switch_path(), dpids);
    }
}
