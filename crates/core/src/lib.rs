//! FlowDiff: diagnosing data center behavior flow by flow.
//!
//! A reproduction of the ICDCS 2013 paper by Arefin, Singh, Jiang,
//! Zhang, and Lumezanu. FlowDiff passively captures the OpenFlow control
//! traffic of a data center ([`netsim::log::ControllerLog`]), builds
//! behavioral models from three perspectives — applications,
//! infrastructure, and operators — and detects operational problems by
//! *diffing* the current model against a known-good baseline, filtering
//! out changes explained by learned operator-task automata.
//!
//! # Pipeline
//!
//! ```text
//! log L1 (healthy) -> BehaviorModel + StabilityReport       (baseline)
//! log L2 (current) -> BehaviorModel + task time series
//! diff::compare(L1, L2) -> ModelDiff
//! diagnosis::diagnose(..) -> known/unknown changes, problem classes,
//!                            ranked suspect components
//! ```
//!
//! The pipeline is streaming end to end: events flow through a
//! [`records::RecordAssembler`] into a
//! [`model::IncrementalModelBuilder`], and the batch calls above are
//! thin wrappers that feed a whole log through it and snapshot once.
//! [`diff::OnlineDiffer`] drives the same machinery continuously,
//! diffing a sliding window against the baseline at epoch boundaries.
//!
//! # Example
//!
//! ```
//! use flowdiff::prelude::*;
//! use netsim::log::ControllerLog;
//!
//! let config = FlowDiffConfig::default();
//! let baseline_log = ControllerLog::new(); // normally: a captured log
//! let current_log = ControllerLog::new();
//!
//! let baseline = BehaviorModel::build(&baseline_log, &config);
//! let current = BehaviorModel::build(&current_log, &config);
//! let stability = StabilityReport::all_stable(&baseline);
//!
//! let diff = flowdiff::diff::compare(&baseline, &current, &stability, &config);
//! let report = flowdiff::diagnosis::diagnose(&diff, &current, &[], &config);
//! assert!(report.is_healthy());
//! ```

pub mod change;
pub mod checkpoint;
pub mod config;
pub mod diagnosis;
pub mod diff;
pub mod epoch;
pub mod groups;
pub mod ids;
pub mod model;
pub mod records;
pub mod signatures;
pub mod stability;
pub mod stats;
pub mod tasks;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::change::Locus;
    pub use crate::checkpoint::{
        AnyCheckpoint, BaselineBundle, Checkpoint, PersistError, ShardedCheckpoint,
    };
    pub use crate::config::{ConfigError, FlowDiffConfig};
    pub use crate::diagnosis::{
        diagnose, Change, Component, DiagnosisReport, ProblemClass, SignatureKind,
    };
    pub use crate::diff::{
        compare, EpochSnapshot, EpochTimings, ModelDiff, OnlineDiffer, ShardStats, ShardedDiffer,
        SignatureHealth,
    };
    pub use crate::epoch::EpochClock;
    pub use crate::groups::{discover_groups, AppGroup, Edge};
    pub use crate::ids::{
        shard_of, EntityCatalog, HostId, IRecord, InternedLog, PortId, RecordIndex, ShardKey,
        SwitchId,
    };
    pub use crate::model::{BehaviorModel, GroupSignatures, IncrementalModelBuilder, ShardModel};
    pub use crate::records::{
        extract_records, FlowRecord, FlowTuple, IngestAnomaly, IngestHealth, RecordAssembler,
        RoutedEvent, ShardRouter,
    };
    pub use crate::signatures::{
        DiffCtx, Signature, SignatureBuilder, SignatureInputs, StabilityCtx, StabilityMask,
    };
    pub use crate::stability::{analyze, StabilityReport};
    pub use crate::tasks::{learn_task, TaskAutomaton, TaskEvent, TaskLibrary};
}
