//! The model diff engine (Section IV-A).
//!
//! Compares the signatures of two behavior models group by group through
//! the [`Signature`] trait: each signature diffs itself, gates the
//! result through its [`StabilityMask`], and renders the survivors into
//! the tagged [`Change`] vocabulary. The engine never pattern-matches on
//! concrete change types — adding a tenth signature means implementing
//! the trait, not editing this file.

use openflow::types::Timestamp;
use serde::{Deserialize, Serialize};

use crate::change::{Change, SignatureKind};
use crate::config::{ConfigError, FlowDiffConfig};
use crate::groups::{match_group_refs, AppGroup};
use crate::model::{BehaviorModel, IncrementalModelBuilder};
use crate::records::RecordAssembler;
use crate::signatures::{DiffCtx, Signature, StabilityMask};
use crate::stability::StabilityReport;
use netsim::log::ControlEvent;

/// Differences in one application group matched across the two models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupDiff {
    /// Index of the group in the reference model.
    pub ref_idx: usize,
    /// Index of the matched group in the current model.
    pub cur_idx: usize,
    /// All stability-gated changes of this group, tagged by signature.
    pub changes: Vec<Change>,
}

impl GroupDiff {
    /// True when nothing changed in this group.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// The changes of one signature kind.
    pub fn of_kind(&self, kind: SignatureKind) -> impl Iterator<Item = &Change> {
        self.changes.iter().filter(move |c| c.kind == kind)
    }
}

/// The complete diff of two behavior models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelDiff {
    /// Per-matched-group differences.
    pub group_diffs: Vec<GroupDiff>,
    /// Groups present only in the current model (indices into it).
    pub new_groups: Vec<usize>,
    /// Groups present only in the reference model (indices into it).
    pub missing_groups: Vec<usize>,
    /// Infrastructure changes (PT, ISL, LU, CRT), tagged by signature.
    pub infra: Vec<Change>,
}

impl ModelDiff {
    /// True when the models agree on every stable signature.
    pub fn is_empty(&self) -> bool {
        self.group_diffs.iter().all(GroupDiff::is_empty)
            && self.new_groups.is_empty()
            && self.missing_groups.is_empty()
            && self.infra.is_empty()
    }

    /// The infrastructure changes of one signature kind.
    pub fn infra_of_kind(&self, kind: SignatureKind) -> impl Iterator<Item = &Change> {
        self.infra.iter().filter(move |c| c.kind == kind)
    }
}

/// Diffs one signature pair through the trait, gated by the stability
/// mask when the stability pass produced one (a missing mask means the
/// signature was not judged: fall back to its own all-stable mask).
fn gated<S: Signature>(
    reference: &S,
    current: &S,
    ctx: &DiffCtx<'_>,
    mask: Option<&StabilityMask>,
) -> Vec<Change> {
    match mask {
        Some(m) => reference.tagged_diff(current, ctx, m),
        None => reference.tagged_diff(current, ctx, &reference.stable_mask()),
    }
}

/// Compares two models, gated by the reference model's stability report
/// (index-aligned with `reference.groups`).
pub fn compare(
    reference: &BehaviorModel,
    current: &BehaviorModel,
    stability: &StabilityReport,
    config: &FlowDiffConfig,
) -> ModelDiff {
    let ref_groups: Vec<&AppGroup> = reference.groups.iter().map(|g| &g.group).collect();
    let cur_groups: Vec<&AppGroup> = current.groups.iter().map(|g| &g.group).collect();
    let (pairs, missing_groups, new_groups) = match_group_refs(&ref_groups, &cur_groups);
    // A current group whose members all belonged to one reference group
    // is a *fragment* of it (e.g. a tier cut off by a failure), not a
    // new application: the per-group CG diff already covers it.
    let new_groups: Vec<usize> = new_groups
        .into_iter()
        .filter(|&gi| {
            let members = &cur_groups[gi].members;
            !ref_groups
                .iter()
                .any(|r| members.iter().all(|m| r.members.contains(m)))
        })
        .collect();

    // The current model carries an edge index built at assembly; the
    // two models have independent catalogs, so everything crossing the
    // reference/current boundary is resolved to addresses — IDs never
    // cross logs.
    let ctx = DiffCtx {
        config,
        records: &current.edge_index,
    };

    let group_diffs = pairs
        .into_iter()
        .map(|(ri, ci)| {
            let r = &reference.groups[ri];
            let c = &current.groups[ci];
            let stab = &stability.per_group[ri];

            let mut changes = Vec::new();
            changes.extend(gated(
                &r.connectivity,
                &c.connectivity,
                &ctx,
                stab.mask(SignatureKind::Cg),
            ));
            changes.extend(gated(
                &r.flow_stats,
                &c.flow_stats,
                &ctx,
                stab.mask(SignatureKind::Fs),
            ));
            changes.extend(gated(
                &r.interaction,
                &c.interaction,
                &ctx,
                stab.mask(SignatureKind::Ci),
            ));
            changes.extend(gated(
                &r.delay,
                &c.delay,
                &ctx,
                stab.mask(SignatureKind::Dd),
            ));
            changes.extend(gated(
                &r.correlation,
                &c.correlation,
                &ctx,
                stab.mask(SignatureKind::Pc),
            ));

            GroupDiff {
                ref_idx: ri,
                cur_idx: ci,
                changes,
            }
        })
        .collect();

    // Infrastructure signatures are judged wholesale and never gated by
    // the application stability pass.
    let mut infra = Vec::new();
    infra.extend(gated(&reference.topology, &current.topology, &ctx, None));
    infra.extend(gated(&reference.latency, &current.latency, &ctx, None));
    infra.extend(gated(
        &reference.utilization,
        &current.utilization,
        &ctx,
        None,
    ));
    infra.extend(gated(&reference.response, &current.response, &ctx, None));

    ModelDiff {
        group_diffs,
        new_groups,
        missing_groups,
        infra,
    }
}

/// One sliding-window comparison emitted by the [`OnlineDiffer`] at an
/// epoch boundary: the model of the trailing window and its diff
/// against the reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochSnapshot {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// The trailing window this snapshot models, `[start, end)`.
    pub window: (Timestamp, Timestamp),
    /// Flow records in the window model (in-flight flows included).
    pub records: usize,
    /// The window's behavior model.
    pub model: BehaviorModel,
    /// Its diff against the reference model.
    pub diff: ModelDiff,
}

/// Online diff mode (the streaming counterpart of one-shot
/// [`compare`]): feed control events as they arrive; every
/// `config.online_epoch_us` of log time it models the trailing
/// `config.online_window_us` window and diffs it against a fixed
/// reference model.
///
/// Internally an incremental pipeline — a [`RecordAssembler`] turns
/// events into flow records, an [`IncrementalModelBuilder`] accumulates
/// them, and `retire_before` keeps memory proportional to the window.
/// At each boundary the builder is cloned and the assembler's in-flight
/// episodes are added to the clone, so long-running flows show up in
/// window models without disturbing (or double-counting in) the real
/// accumulation.
#[derive(Debug, Clone)]
pub struct OnlineDiffer {
    reference: BehaviorModel,
    stability: StabilityReport,
    config: FlowDiffConfig,
    assembler: RecordAssembler,
    builder: IncrementalModelBuilder,
    epoch_us: u64,
    window_us: u64,
    next_boundary: Option<Timestamp>,
    epoch: u64,
}

impl OnlineDiffer {
    /// A differ against `reference`, gated by `stability` (use
    /// [`StabilityReport::all_stable`] to diff ungated).
    ///
    /// # Panics
    ///
    /// Panics when the config fails [`FlowDiffConfig::validate`]; use
    /// [`OnlineDiffer::try_new`] to handle invalid configs gracefully.
    pub fn new(
        reference: BehaviorModel,
        stability: StabilityReport,
        config: &FlowDiffConfig,
    ) -> OnlineDiffer {
        OnlineDiffer::try_new(reference, stability, config).expect("invalid FlowDiffConfig")
    }

    /// Like [`OnlineDiffer::new`], but rejects nonsensical configs
    /// (zero epochs, a window shorter than its epoch, …) instead of
    /// letting them panic deep inside the pipeline.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`FlowDiffConfig::validate`].
    pub fn try_new(
        reference: BehaviorModel,
        stability: StabilityReport,
        config: &FlowDiffConfig,
    ) -> Result<OnlineDiffer, ConfigError> {
        config.validate()?;
        Ok(OnlineDiffer {
            reference,
            stability,
            config: config.clone(),
            assembler: RecordAssembler::new(config),
            builder: IncrementalModelBuilder::new(config),
            epoch_us: config.online_epoch_us.max(1),
            window_us: config.online_window_us.max(1),
            next_boundary: None,
            epoch: 0,
        })
    }

    /// Event-level ingestion health accumulated so far (out-of-order
    /// events, duplicate xids, orphans, evictions). Frame-level decode
    /// counters live with the [`LogStream`](netsim::log::LogStream)
    /// feeding this differ; fold them in with
    /// [`IngestHealth::absorb_stream`](crate::records::IngestHealth::absorb_stream).
    pub fn health(&self) -> &crate::records::IngestHealth {
        self.assembler.health()
    }

    /// Feeds one event; returns the snapshots of every epoch boundary
    /// the event's timestamp crossed (usually none, one if the stream
    /// just entered a new epoch, several after a quiet stretch — but
    /// never more than one window's worth: boundaries whose window had
    /// already drained are skipped, their epoch indices consumed, so a
    /// quiet day or a corrupt far-future timestamp cannot force one
    /// model build per crossed epoch).
    pub fn observe(&mut self, event: &ControlEvent) -> Vec<EpochSnapshot> {
        // A quarantined timestamp must not drive the epoch clock either.
        if self.assembler.quarantines(event.ts) {
            let admitted = self.assembler.observe(event);
            debug_assert!(!admitted, "quarantines() and observe() disagree");
            return Vec::new();
        }
        if self.next_boundary.is_none() {
            self.next_boundary = Some(event.ts + self.epoch_us);
        }
        // After this many boundaries with no new events, the sliding
        // window has fully drained and every further snapshot before
        // the event would model the same empty window.
        let drain_epochs = self.window_us.div_ceil(self.epoch_us) + 1;
        let mut emitted = 0;
        let mut out = Vec::new();
        while let Some(boundary) = self.next_boundary {
            if event.ts < boundary {
                break;
            }
            if emitted < drain_epochs {
                out.push(self.snapshot_at(boundary));
                emitted += 1;
                self.next_boundary = Some(boundary + self.epoch_us);
            } else {
                // Jump the epoch grid to the first boundary beyond the
                // event, consuming the skipped indices.
                let behind = event.ts.as_micros() - boundary.as_micros();
                let skipped = behind / self.epoch_us + 1;
                self.epoch += skipped;
                self.next_boundary = Some(Timestamp::from_micros(
                    boundary
                        .as_micros()
                        .saturating_add(skipped.saturating_mul(self.epoch_us)),
                ));
            }
        }
        self.assembler.observe(event);
        self.builder.observe_event(event);
        for record in self.assembler.take_completed() {
            self.builder.observe_record(record);
        }
        out
    }

    /// Flushes the final partial epoch, completing every in-flight
    /// episode. None when no event was ever observed.
    pub fn finish(self) -> Option<EpochSnapshot> {
        let OnlineDiffer {
            reference,
            stability,
            config,
            assembler,
            mut builder,
            window_us,
            epoch,
            ..
        } = self;
        let (_, end) = builder.observed_span()?;
        for record in assembler.finish() {
            builder.observe_record(record);
        }
        let start = Timestamp::from_micros(end.as_micros().saturating_sub(window_us));
        builder.retire_before(start);
        builder.set_span((start, end));
        let model = builder.into_snapshot();
        let diff = compare(&reference, &model, &stability, &config);
        Some(EpochSnapshot {
            epoch,
            window: (start, end),
            records: model.records.len(),
            model,
            diff,
        })
    }

    /// Models the window ending at `boundary` and diffs it against the
    /// reference.
    fn snapshot_at(&mut self, boundary: Timestamp) -> EpochSnapshot {
        for record in self.assembler.take_completed() {
            self.builder.observe_record(record);
        }
        let start = Timestamp::from_micros(boundary.as_micros().saturating_sub(self.window_us));
        self.builder.retire_before(start);
        // Snapshot through a clone with the in-flight episodes added:
        // they belong in this window's picture, but must complete into
        // the real builder exactly once.
        let mut probe = self.builder.clone();
        for record in self.assembler.open_records() {
            probe.observe_record(record);
        }
        probe.retire_before(start);
        probe.set_span((start, boundary));
        let model = probe.into_snapshot();
        let diff = compare(&self.reference, &model, &self.stability, &self.config);
        let snapshot = EpochSnapshot {
            epoch: self.epoch,
            window: (start, boundary),
            records: model.records.len(),
            model,
            diff,
        };
        self.epoch += 1;
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::change::ChangeDirection;
    use netsim::topology::Topology;
    use openflow::types::Timestamp;
    use workloads::prelude::*;

    fn scenario_log(
        seed: u64,
        fault: Option<(Timestamp, Fault)>,
    ) -> (ControllerLog, FlowDiffConfig) {
        let mut topo = Topology::lab();
        let (catalog, _) = install_services(&mut topo, "of7");
        let ip = |n: &str| topo.host_ip(topo.node_by_name(n).unwrap());
        let (s13, s4, s14, s25) = (ip("S13"), ip("S4"), ip("S14"), ip("S25"));
        let mut sc = Scenario::new(
            topo,
            seed,
            Timestamp::from_secs(1),
            Timestamp::from_secs(41),
        );
        sc.services(catalog.clone())
            .app(templates::three_tier(
                "app",
                vec![s13],
                vec![s4],
                vec![s14],
                None,
            ))
            .client(ClientWorkload {
                client: s25,
                entry_hosts: vec![s13],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(10.0),
                request_bytes: 2_048,
            });
        if let Some((at, f)) = fault {
            sc.fault(at, f);
        }
        let result = sc.run();
        let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());
        (result.log, config)
    }

    #[test]
    fn online_differ_snapshots_every_epoch() {
        let (log1, config) = scenario_log(1, None);
        let m1 = crate::model::BehaviorModel::build(&log1, &config);
        let stability = crate::stability::analyze(&log1, &m1, &config);
        let (log2, _) = scenario_log(2, None);
        let mut differ = OnlineDiffer::new(m1, stability, &config);
        let mut snaps = Vec::new();
        for event in log2.events() {
            snaps.extend(differ.observe(event));
        }
        let last = differ.finish().expect("events were observed");
        assert!(
            snaps.len() >= 5,
            "40s log at 5s epochs: {} snaps",
            snaps.len()
        );
        for (i, s) in snaps.iter().enumerate() {
            assert_eq!(s.epoch, i as u64, "epochs count up from zero");
            assert!(s.window.0 <= s.window.1);
            assert!(s.window.1.saturating_since(s.window.0) <= config.online_window_us);
            assert_eq!(s.records, s.model.records.len());
        }
        for w in snaps.windows(2) {
            assert_eq!(
                w[1].window.1.saturating_since(w[0].window.1),
                config.online_epoch_us,
                "window end advances by exactly one epoch"
            );
        }
        assert_eq!(last.epoch, snaps.len() as u64);
        let peak = snaps.iter().map(|s| s.records).max().unwrap();
        assert!(peak > 100, "steady traffic fills the windows: peak {peak}");
        // The capture has a quiet tail (flow-entry expirations trail the
        // last request): the sliding window must retire the old flows
        // rather than accumulate forever.
        assert!(
            snaps.last().unwrap().records < peak / 2,
            "trailing windows shrink as traffic stops"
        );
    }

    #[test]
    fn online_flush_with_full_width_window_matches_batch_build() {
        // With the window sized to the whole capture, nothing is ever
        // retired, so the final flush must reproduce the batch model
        // bit for bit — and diff empty against itself.
        let (log, mut config) = scenario_log(1, None);
        let (t0, t1) = log.time_range().unwrap();
        config.online_window_us = t1.saturating_since(t0);
        let batch = crate::model::BehaviorModel::build(&log, &config);
        let stability = crate::stability::StabilityReport::all_stable(&batch);
        let mut differ = OnlineDiffer::new(batch.clone(), stability, &config);
        for event in log.events() {
            differ.observe(event);
        }
        let last = differ.finish().unwrap();
        assert_eq!(last.model, batch, "streamed window model == batch model");
        assert!(last.diff.is_empty(), "a model diffed against itself");
    }

    #[test]
    fn same_conditions_produce_empty_diff() {
        let (log1, config) = scenario_log(1, None);
        let (log2, _) = scenario_log(2, None);
        let m1 = crate::model::BehaviorModel::build(&log1, &config);
        let m2 = crate::model::BehaviorModel::build(&log2, &config);
        let stability = crate::stability::analyze(&log1, &m1, &config);
        let diff = compare(&m1, &m2, &stability, &config);
        assert!(
            diff.is_empty(),
            "two healthy runs must not differ: {diff:#?}"
        );
    }

    #[test]
    fn host_slowdown_shifts_dd_only() {
        let (log1, config) = scenario_log(1, None);
        let mut topo = Topology::lab();
        let (_, _) = install_services(&mut topo, "of7");
        let s4 = topo.node_by_name("S4").unwrap();
        let (log2, _) = scenario_log(
            2,
            Some((
                Timestamp::ZERO,
                Fault::HostSlowdown {
                    host: s4,
                    extra_us: 150_000,
                },
            )),
        );
        let m1 = crate::model::BehaviorModel::build(&log1, &config);
        let m2 = crate::model::BehaviorModel::build(&log2, &config);
        let stability = crate::stability::analyze(&log1, &m1, &config);
        let diff = compare(&m1, &m2, &stability, &config);
        let g = &diff.group_diffs[0];
        assert!(
            g.of_kind(SignatureKind::Dd).count() > 0,
            "DD must shift under host slowdown"
        );
        assert_eq!(
            g.of_kind(SignatureKind::Cg).count(),
            0,
            "CG must be unaffected"
        );
        assert_eq!(diff.infra_of_kind(SignatureKind::Pt).count(), 0);
        assert_eq!(diff.infra_of_kind(SignatureKind::Crt).count(), 0);
    }

    #[test]
    fn app_crash_changes_cg_and_ci() {
        let (log1, config) = scenario_log(1, None);
        let mut topo = Topology::lab();
        let (_, _) = install_services(&mut topo, "of7");
        let s4 = topo.node_by_name("S4").unwrap();
        let (log2, _) = scenario_log(
            2,
            Some((
                Timestamp::ZERO,
                Fault::AppCrash {
                    host: s4,
                    port: 8080,
                },
            )),
        );
        let m1 = crate::model::BehaviorModel::build(&log1, &config);
        let m2 = crate::model::BehaviorModel::build(&log2, &config);
        let stability = crate::stability::analyze(&log1, &m1, &config);
        let diff = compare(&m1, &m2, &stability, &config);
        let g = &diff.group_diffs[0];
        assert!(
            g.of_kind(SignatureKind::Cg)
                .any(|c| c.direction == ChangeDirection::Removed),
            "app -> db edge must disappear: {:#?}",
            g.changes
        );
    }

    fn hello_at(ts: Timestamp) -> ControlEvent {
        ControlEvent {
            ts,
            dpid: openflow::types::DatapathId(1),
            direction: netsim::log::Direction::ToController,
            xid: openflow::types::Xid(0),
            msg: openflow::messages::OfpMessage::Hello,
        }
    }

    #[test]
    fn far_future_event_cannot_flood_the_epoch_clock() {
        let config = FlowDiffConfig::default();
        let empty = netsim::log::ControllerLog::new();
        let reference = crate::model::BehaviorModel::build(&empty, &config);
        let stability = crate::stability::StabilityReport::all_stable(&reference);
        let mut differ = OnlineDiffer::try_new(reference, stability, &config).unwrap();

        assert!(differ
            .observe(&hello_at(Timestamp::from_secs(1)))
            .is_empty());
        // 10 000 epochs ahead: one snapshot per crossed epoch would be
        // 10 000 model builds. Only the draining window may be modeled.
        let jump = Timestamp::from_micros(1_000_000 + 10_000 * config.online_epoch_us);
        let flood = differ.observe(&hello_at(jump));
        let drain = config.online_window_us.div_ceil(config.online_epoch_us) + 1;
        assert!(
            (flood.len() as u64) <= drain,
            "{} snapshots for one quiet stretch",
            flood.len()
        );
        // The skipped boundaries still consume epoch indices, and the
        // differ keeps answering afterwards.
        let next = differ.observe(&hello_at(jump + config.online_epoch_us));
        assert_eq!(next.len(), 1);
        assert!(next[0].epoch >= 10_000, "epoch index reflects log time");
    }

    #[test]
    fn quarantined_timestamp_leaves_the_epoch_clock_alone() {
        let config = FlowDiffConfig {
            max_time_jump_us: 60_000_000,
            ..FlowDiffConfig::default()
        };
        let empty = netsim::log::ControllerLog::new();
        let reference = crate::model::BehaviorModel::build(&empty, &config);
        let stability = crate::stability::StabilityReport::all_stable(&reference);
        let mut differ = OnlineDiffer::try_new(reference, stability, &config).unwrap();

        assert!(differ
            .observe(&hello_at(Timestamp::from_secs(1)))
            .is_empty());
        let corrupt = Timestamp::from_micros(1_000_000 + (1 << 50));
        assert!(
            differ.observe(&hello_at(corrupt)).is_empty(),
            "corrupt timestamp must not emit snapshots"
        );
        assert_eq!(differ.health().time_jumps, 1);
        // The epoch clock still follows honest time.
        let honest = differ.observe(&hello_at(Timestamp::from_secs(7)));
        assert_eq!(honest.len(), 1);
        assert_eq!(honest[0].epoch, 0);
    }
}
