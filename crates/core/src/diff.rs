//! The model diff engine (Section IV-A).
//!
//! Compares the signatures of two behavior models group by group,
//! skipping signatures the stability analysis marked unreliable, and
//! collects every difference.

use serde::{Deserialize, Serialize};

use crate::config::FlowDiffConfig;
use crate::groups::match_groups;
use crate::model::BehaviorModel;
use crate::signatures::connectivity::{self, CgDiff};
use crate::signatures::correlation::{self, PcChange};
use crate::signatures::delay::{self, DdChange};
use crate::signatures::flow_stats::{self, FsChange};
use crate::signatures::infra::{diff_crt, diff_isl, diff_topology, CrtChange, IslChange, PtDiff};
use crate::signatures::utilization::{diff_utilization, LuChange};
use crate::signatures::interaction::{self, CiChange};
use crate::stability::StabilityReport;

/// Differences in one application group matched across the two models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupDiff {
    /// Index of the group in the reference model.
    pub ref_idx: usize,
    /// Index of the matched group in the current model.
    pub cur_idx: usize,
    /// Connectivity graph changes.
    pub cg: CgDiff,
    /// Flow-statistics changes.
    pub fs: Vec<FsChange>,
    /// Component-interaction changes.
    pub ci: Vec<CiChange>,
    /// Delay-distribution changes.
    pub dd: Vec<DdChange>,
    /// Partial-correlation changes.
    pub pc: Vec<PcChange>,
}

impl GroupDiff {
    /// True when nothing changed in this group.
    pub fn is_empty(&self) -> bool {
        self.cg.is_empty()
            && self.fs.is_empty()
            && self.ci.is_empty()
            && self.dd.is_empty()
            && self.pc.is_empty()
    }
}

/// The complete diff of two behavior models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelDiff {
    /// Per-matched-group differences.
    pub group_diffs: Vec<GroupDiff>,
    /// Groups present only in the current model (indices into it).
    pub new_groups: Vec<usize>,
    /// Groups present only in the reference model (indices into it).
    pub missing_groups: Vec<usize>,
    /// Physical-topology changes.
    pub pt: PtDiff,
    /// Inter-switch latency changes.
    pub isl: Vec<IslChange>,
    /// Controller response-time change, if any.
    pub crt: Option<CrtChange>,
    /// Link-utilization changes.
    pub lu: Vec<LuChange>,
}

impl ModelDiff {
    /// True when the models agree on every stable signature.
    pub fn is_empty(&self) -> bool {
        self.group_diffs.iter().all(GroupDiff::is_empty)
            && self.new_groups.is_empty()
            && self.missing_groups.is_empty()
            && self.pt.is_empty()
            && self.isl.is_empty()
            && self.crt.is_none()
            && self.lu.is_empty()
    }
}

/// Compares two models, gated by the reference model's stability report
/// (index-aligned with `reference.groups`).
pub fn compare(
    reference: &BehaviorModel,
    current: &BehaviorModel,
    stability: &StabilityReport,
    config: &FlowDiffConfig,
) -> ModelDiff {
    let ref_groups: Vec<_> = reference.groups.iter().map(|g| g.group.clone()).collect();
    let cur_groups: Vec<_> = current.groups.iter().map(|g| g.group.clone()).collect();
    let (pairs, missing_groups, new_groups) = match_groups(&ref_groups, &cur_groups);
    // A current group whose members all belonged to one reference group
    // is a *fragment* of it (e.g. a tier cut off by a failure), not a
    // new application: the per-group CG diff already covers it.
    let new_groups: Vec<usize> = new_groups
        .into_iter()
        .filter(|&gi| {
            let members = &cur_groups[gi].members;
            !ref_groups
                .iter()
                .any(|r| members.iter().all(|m| r.members.contains(m)))
        })
        .collect();

    let group_diffs = pairs
        .into_iter()
        .map(|(ri, ci)| {
            let r = &reference.groups[ri];
            let c = &current.groups[ci];
            let stab = &stability.per_group[ri];

            let cg = if stab.cg {
                connectivity::diff(&r.connectivity, &c.connectivity, &current.records)
            } else {
                CgDiff::default()
            };
            let fs = if stab.fs {
                flow_stats::diff(&r.flow_stats, &c.flow_stats, config.fs_rel_change)
            } else {
                Vec::new()
            };
            let ci_changes = interaction::diff(&r.interaction, &c.interaction, config.chi2_threshold)
                .into_iter()
                .filter(|ch| stab.ci_nodes.get(&ch.node).copied().unwrap_or(false))
                .collect();
            let dd = delay::diff(&r.delay, &c.delay, config)
                .into_iter()
                .filter(|ch| stab.dd_pairs.get(&ch.pair).copied().unwrap_or(false))
                .collect();
            let pc = correlation::diff(&r.correlation, &c.correlation, config)
                .into_iter()
                .filter(|ch| stab.pc_pairs.get(&ch.pair).copied().unwrap_or(false))
                .collect();

            GroupDiff {
                ref_idx: ri,
                cur_idx: ci,
                cg,
                fs,
                ci: ci_changes,
                dd,
                pc,
            }
        })
        .collect();

    ModelDiff {
        group_diffs,
        new_groups,
        missing_groups,
        pt: diff_topology(&reference.topology, &current.topology),
        isl: diff_isl(&reference.latency, &current.latency, config),
        crt: diff_crt(&reference.response, &current.response, config),
        lu: diff_utilization(&reference.utilization, &current.utilization, config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::topology::Topology;
    use openflow::types::Timestamp;
    use workloads::prelude::*;

    fn scenario_log(seed: u64, fault: Option<(Timestamp, Fault)>) -> (ControllerLog, FlowDiffConfig) {
        let mut topo = Topology::lab();
        let (catalog, _) = install_services(&mut topo, "of7");
        let ip = |n: &str| topo.host_ip(topo.node_by_name(n).unwrap());
        let (s13, s4, s14, s25) = (ip("S13"), ip("S4"), ip("S14"), ip("S25"));
        let mut sc = Scenario::new(topo, seed, Timestamp::from_secs(1), Timestamp::from_secs(41));
        sc.services(catalog.clone())
            .app(templates::three_tier(
                "app",
                vec![s13],
                vec![s4],
                vec![s14],
                None,
            ))
            .client(ClientWorkload {
                client: s25,
                entry_hosts: vec![s13],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(10.0),
                request_bytes: 2_048,
            });
        if let Some((at, f)) = fault {
            sc.fault(at, f);
        }
        let result = sc.run();
        let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());
        (result.log, config)
    }

    #[test]
    fn same_conditions_produce_empty_diff() {
        let (log1, config) = scenario_log(1, None);
        let (log2, _) = scenario_log(2, None);
        let m1 = crate::model::BehaviorModel::build(&log1, &config);
        let m2 = crate::model::BehaviorModel::build(&log2, &config);
        let stability = crate::stability::analyze(&log1, &m1, &config);
        let diff = compare(&m1, &m2, &stability, &config);
        assert!(
            diff.is_empty(),
            "two healthy runs must not differ: {diff:#?}"
        );
    }

    #[test]
    fn host_slowdown_shifts_dd_only() {
        let (log1, config) = scenario_log(1, None);
        let mut topo = Topology::lab();
        let (_, _) = install_services(&mut topo, "of7");
        let s4 = topo.node_by_name("S4").unwrap();
        let (log2, _) = scenario_log(
            2,
            Some((
                Timestamp::ZERO,
                Fault::HostSlowdown {
                    host: s4,
                    extra_us: 150_000,
                },
            )),
        );
        let m1 = crate::model::BehaviorModel::build(&log1, &config);
        let m2 = crate::model::BehaviorModel::build(&log2, &config);
        let stability = crate::stability::analyze(&log1, &m1, &config);
        let diff = compare(&m1, &m2, &stability, &config);
        let g = &diff.group_diffs[0];
        assert!(!g.dd.is_empty(), "DD must shift under host slowdown");
        assert!(g.cg.is_empty(), "CG must be unaffected");
        assert!(diff.pt.is_empty());
        assert!(diff.crt.is_none());
    }

    #[test]
    fn app_crash_changes_cg_and_ci() {
        let (log1, config) = scenario_log(1, None);
        let mut topo = Topology::lab();
        let (_, _) = install_services(&mut topo, "of7");
        let s4 = topo.node_by_name("S4").unwrap();
        let (log2, _) = scenario_log(
            2,
            Some((
                Timestamp::ZERO,
                Fault::AppCrash {
                    host: s4,
                    port: 8080,
                },
            )),
        );
        let m1 = crate::model::BehaviorModel::build(&log1, &config);
        let m2 = crate::model::BehaviorModel::build(&log2, &config);
        let stability = crate::stability::analyze(&log1, &m1, &config);
        let diff = compare(&m1, &m2, &stability, &config);
        let g = &diff.group_diffs[0];
        assert!(
            !g.cg.removed.is_empty(),
            "app -> db edge must disappear: {:#?}",
            g.cg
        );
    }
}
