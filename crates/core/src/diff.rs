//! The model diff engine (Section IV-A).
//!
//! Compares the signatures of two behavior models group by group through
//! the [`Signature`] trait: each signature diffs itself, gates the
//! result through its [`StabilityMask`], and renders the survivors into
//! the tagged [`Change`] vocabulary. The engine never pattern-matches on
//! concrete change types — adding a tenth signature means implementing
//! the trait, not editing this file.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};

use openflow::types::Timestamp;
use serde::{Deserialize, Serialize};

use crate::change::{Change, SignatureKind};
use crate::config::{ConfigError, FlowDiffConfig};
use crate::epoch::EpochClock;
use crate::groups::{match_group_refs, AppGroup};
use crate::model::{BehaviorModel, IncrementalModelBuilder, ShardModel};
use crate::records::{EventClass, RecordAssembler, RoutedEvent, ShardRouter};
use crate::signatures::{DiffCtx, Signature, StabilityMask};
use crate::stability::StabilityReport;
use netsim::log::ControlEvent;

/// Differences in one application group matched across the two models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupDiff {
    /// Index of the group in the reference model.
    pub ref_idx: usize,
    /// Index of the matched group in the current model.
    pub cur_idx: usize,
    /// All stability-gated changes of this group, tagged by signature.
    pub changes: Vec<Change>,
}

impl GroupDiff {
    /// True when nothing changed in this group.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// The changes of one signature kind.
    pub fn of_kind(&self, kind: SignatureKind) -> impl Iterator<Item = &Change> {
        self.changes.iter().filter(move |c| c.kind == kind)
    }
}

/// The complete diff of two behavior models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelDiff {
    /// Per-matched-group differences.
    pub group_diffs: Vec<GroupDiff>,
    /// Groups present only in the current model (indices into it).
    pub new_groups: Vec<usize>,
    /// Groups present only in the reference model (indices into it).
    pub missing_groups: Vec<usize>,
    /// Infrastructure changes (PT, ISL, LU, CRT), tagged by signature.
    pub infra: Vec<Change>,
}

impl ModelDiff {
    /// True when the models agree on every stable signature.
    pub fn is_empty(&self) -> bool {
        self.group_diffs.iter().all(GroupDiff::is_empty)
            && self.new_groups.is_empty()
            && self.missing_groups.is_empty()
            && self.infra.is_empty()
    }

    /// The infrastructure changes of one signature kind.
    pub fn infra_of_kind(&self, kind: SignatureKind) -> impl Iterator<Item = &Change> {
        self.infra.iter().filter(move |c| c.kind == kind)
    }
}

/// Diffs one signature pair through the trait, gated by the stability
/// mask when the stability pass produced one (a missing mask means the
/// signature was not judged: fall back to its own all-stable mask).
fn gated<S: Signature>(
    reference: &S,
    current: &S,
    ctx: &DiffCtx<'_>,
    mask: Option<&StabilityMask>,
) -> Vec<Change> {
    match mask {
        Some(m) => reference.tagged_diff(current, ctx, m),
        None => reference.tagged_diff(current, ctx, &reference.stable_mask()),
    }
}

/// Compares two models, gated by the reference model's stability report
/// (index-aligned with `reference.groups`).
pub fn compare(
    reference: &BehaviorModel,
    current: &BehaviorModel,
    stability: &StabilityReport,
    config: &FlowDiffConfig,
) -> ModelDiff {
    let ref_groups: Vec<&AppGroup> = reference.groups.iter().map(|g| &g.group).collect();
    let cur_groups: Vec<&AppGroup> = current.groups.iter().map(|g| &g.group).collect();
    let (pairs, missing_groups, new_groups) = match_group_refs(&ref_groups, &cur_groups);
    // A current group whose members all belonged to one reference group
    // is a *fragment* of it (e.g. a tier cut off by a failure), not a
    // new application: the per-group CG diff already covers it.
    let new_groups: Vec<usize> = new_groups
        .into_iter()
        .filter(|&gi| {
            let members = &cur_groups[gi].members;
            !ref_groups
                .iter()
                .any(|r| members.iter().all(|m| r.members.contains(m)))
        })
        .collect();

    // The current model carries an edge index built at assembly; the
    // two models have independent catalogs, so everything crossing the
    // reference/current boundary is resolved to addresses — IDs never
    // cross logs.
    let ctx = DiffCtx {
        config,
        records: &current.edge_index,
    };

    let group_diffs = pairs
        .into_iter()
        .map(|(ri, ci)| {
            let r = &reference.groups[ri];
            let c = &current.groups[ci];
            let stab = &stability.per_group[ri];

            let mut changes = Vec::new();
            changes.extend(gated(
                &r.connectivity,
                &c.connectivity,
                &ctx,
                stab.mask(SignatureKind::Cg),
            ));
            changes.extend(gated(
                &r.flow_stats,
                &c.flow_stats,
                &ctx,
                stab.mask(SignatureKind::Fs),
            ));
            changes.extend(gated(
                &r.interaction,
                &c.interaction,
                &ctx,
                stab.mask(SignatureKind::Ci),
            ));
            changes.extend(gated(
                &r.delay,
                &c.delay,
                &ctx,
                stab.mask(SignatureKind::Dd),
            ));
            changes.extend(gated(
                &r.correlation,
                &c.correlation,
                &ctx,
                stab.mask(SignatureKind::Pc),
            ));

            GroupDiff {
                ref_idx: ri,
                cur_idx: ci,
                changes,
            }
        })
        .collect();

    // Infrastructure signatures are judged wholesale and never gated by
    // the application stability pass.
    let mut infra = Vec::new();
    infra.extend(gated(&reference.topology, &current.topology, &ctx, None));
    infra.extend(gated(&reference.latency, &current.latency, &ctx, None));
    infra.extend(gated(
        &reference.utilization,
        &current.utilization,
        &ctx,
        None,
    ));
    infra.extend(gated(&reference.response, &current.response, &ctx, None));

    ModelDiff {
        group_diffs,
        new_groups,
        missing_groups,
        infra,
    }
}

/// Health of one signature's input feed at an epoch boundary.
///
/// A detector whose inputs are starved, or whose state was just
/// restored with data loss, should lower its confidence rather than
/// flood the operator with false "missing behavior" alarms. The
/// [`OnlineDiffer`] judges every signature at each boundary and
/// *suppresses* the diffs of non-healthy kinds: the changes are
/// stripped from the [`EpochSnapshot`] and the verdict recorded in
/// [`EpochSnapshot::gating`] instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SignatureHealth {
    /// Inputs flowing; diffs emitted normally.
    Healthy,
    /// The signature's input feed produced nothing this window while
    /// the reference expects it — diffing would report everything the
    /// reference knows as "missing".
    Starved {
        /// What input is missing.
        reason: String,
    },
    /// The differ was restored from a checkpoint *with data loss* less
    /// than `restore_warmup_us` of log time ago; incremental state may
    /// be missing recent history, so diffs are held back.
    Warming {
        /// Log time remaining until the warm-up ends, microseconds.
        remaining_us: u64,
    },
}

impl fmt::Display for SignatureHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureHealth::Healthy => write!(f, "healthy"),
            SignatureHealth::Starved { reason } => write!(f, "starved: {reason}"),
            SignatureHealth::Warming { remaining_us } => {
                write!(f, "warming: {:.1}s left", *remaining_us as f64 / 1e6)
            }
        }
    }
}

/// One sliding-window comparison emitted by the [`OnlineDiffer`] at an
/// epoch boundary: the model of the trailing window and its diff
/// against the reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochSnapshot {
    /// Zero-based epoch index.
    pub epoch: u64,
    /// The trailing window this snapshot models, `[start, end)`.
    pub window: (Timestamp, Timestamp),
    /// Flow records in the window model (in-flight flows included).
    pub records: usize,
    /// The window's behavior model.
    pub model: BehaviorModel,
    /// Its diff against the reference model, with suppressed kinds'
    /// changes already stripped (see [`EpochSnapshot::gating`]).
    pub diff: ModelDiff,
    /// Signatures whose diffs were suppressed this epoch and why; a
    /// kind not listed here is [`SignatureHealth::Healthy`].
    pub gating: Vec<(SignatureKind, SignatureHealth)>,
}

impl EpochSnapshot {
    /// The health verdict of one signature kind this epoch.
    pub fn health_of(&self, kind: SignatureKind) -> SignatureHealth {
        self.gating
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, h)| h.clone())
            .unwrap_or(SignatureHealth::Healthy)
    }

    /// The suppressed kinds with their reasons (empty when all healthy).
    pub fn suppressed(&self) -> impl Iterator<Item = (SignatureKind, &SignatureHealth)> {
        self.gating.iter().map(|(k, h)| (*k, h))
    }
}

/// Signatures built from flow records — everything except LU, which
/// feeds on polled port counters instead.
const RECORD_FED: [SignatureKind; 8] = [
    SignatureKind::Cg,
    SignatureKind::Fs,
    SignatureKind::Ci,
    SignatureKind::Dd,
    SignatureKind::Pc,
    SignatureKind::Pt,
    SignatureKind::Isl,
    SignatureKind::Crt,
];

/// Judges every signature's input feed for the window ending at `end`
/// and strips the suppressed kinds' changes out of `diff`. Returns the
/// non-healthy verdicts.
fn gate_diff(
    reference: &BehaviorModel,
    model: &BehaviorModel,
    warm_until: Option<Timestamp>,
    end: Timestamp,
    degraded: Option<&str>,
    diff: &mut ModelDiff,
) -> Vec<(SignatureKind, SignatureHealth)> {
    let mut gating: Vec<(SignatureKind, SignatureHealth)> = Vec::new();
    if let Some(until) = warm_until {
        if end < until {
            let remaining_us = until.saturating_since(end);
            for kind in RECORD_FED.into_iter().chain([SignatureKind::Lu]) {
                gating.push((kind, SignatureHealth::Warming { remaining_us }));
            }
        }
    }
    if gating.is_empty() {
        if let Some(reason) = degraded {
            // The transport says a source is stalled or dead: part of
            // the window's behavior is simply missing, so every
            // signature's diff is suppressed rather than flooding
            // "missing flow" alarms against a starved input.
            for kind in RECORD_FED.into_iter().chain([SignatureKind::Lu]) {
                gating.push((
                    kind,
                    SignatureHealth::Starved {
                        reason: format!("ingest degraded: {reason}"),
                    },
                ));
            }
        }
    }
    if gating.is_empty() {
        if model.records.is_empty() && !reference.records.is_empty() {
            for kind in RECORD_FED {
                gating.push((
                    kind,
                    SignatureHealth::Starved {
                        reason: "no flow records in window".to_string(),
                    },
                ));
            }
        }
        if model.utilization.per_port.is_empty() && !reference.utilization.per_port.is_empty() {
            gating.push((
                SignatureKind::Lu,
                SignatureHealth::Starved {
                    reason: "no port-counter samples in window".to_string(),
                },
            ));
        }
    }
    if !gating.is_empty() {
        let kinds: BTreeSet<SignatureKind> = gating.iter().map(|(k, _)| *k).collect();
        for g in &mut diff.group_diffs {
            g.changes.retain(|c| !kinds.contains(&c.kind));
        }
        diff.infra.retain(|c| !kinds.contains(&c.kind));
        if kinds.contains(&SignatureKind::Cg) {
            // With connectivity gated, whole-group appearance and
            // disappearance is an input artifact, not an application
            // change.
            diff.missing_groups.clear();
            diff.new_groups.clear();
        }
    }
    gating
}

/// Cumulative per-stage epoch-boundary timings, microseconds. Wall-clock
/// diagnostics only — excluded from differ equality and serialization —
/// read by the watch loop's per-epoch breakdown line and the hot-path
/// bench via [`OnlineDiffer::take_timings`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochTimings {
    /// Retiring expired state out of the sliding windows.
    pub retire_us: u64,
    /// Folding boundary-drained completed records into the builder
    /// (for the sharded differ, flushing the step buffer to the
    /// workers' batch queues).
    pub observe_us: u64,
    /// Building the window model (the incremental epoch snapshot; for
    /// the sharded differ, the barrier round-trip: queue drain plus
    /// per-shard extraction).
    pub snapshot_us: u64,
    /// Merging per-shard partials into the window model (zero on the
    /// single-shard differ, which has nothing to merge).
    pub merge_us: u64,
    /// Comparing against the reference and gating the diff.
    pub diff_us: u64,
    /// Deepest any worker's batch queue got this epoch, in batches
    /// (zero on the single-shard differ). The gauge counts batches
    /// handed to a channel but not yet fully processed — queued, in
    /// service, and the one a blocked sender is waiting to enqueue —
    /// so readings above the channel bound mean admission outran the
    /// workers and backpressure engaged.
    pub queue_depth_peak: u64,
    /// The busiest worker's share of the epoch's wall-clock time,
    /// percent (zero on the single-shard differ). Low values mean the
    /// workers idle waiting for admission; values near 100 mean a
    /// worker is the bottleneck.
    pub worker_busy_pct: u64,
}

impl EpochTimings {
    /// Accumulates another sample (for averaging across epochs): stage
    /// durations sum, the channel gauges keep their worst case.
    pub fn add(&mut self, other: EpochTimings) {
        self.retire_us += other.retire_us;
        self.observe_us += other.observe_us;
        self.snapshot_us += other.snapshot_us;
        self.merge_us += other.merge_us;
        self.diff_us += other.diff_us;
        self.queue_depth_peak = self.queue_depth_peak.max(other.queue_depth_peak);
        self.worker_busy_pct = self.worker_busy_pct.max(other.worker_busy_pct);
    }
}

/// Runs `f`, adding its wall-clock duration in microseconds to `slot`.
fn timed<T>(slot: &mut u64, f: impl FnOnce() -> T) -> T {
    let t0 = std::time::Instant::now();
    let out = f();
    *slot += t0.elapsed().as_micros() as u64;
    out
}

/// Online diff mode (the streaming counterpart of one-shot
/// [`compare`]): feed control events as they arrive; every
/// `config.online_epoch_us` of log time it models the trailing
/// `config.online_window_us` window and diffs it against a fixed
/// reference model.
///
/// Internally an incremental pipeline — a [`RecordAssembler`] turns
/// events into flow records, an [`IncrementalModelBuilder`] accumulates
/// them, and `retire_before` keeps memory proportional to the window.
/// At each boundary the builder snapshots through its maintained window
/// state ([`IncrementalModelBuilder::epoch_snapshot`]), overlaying the
/// assembler's in-flight episodes and unwinding them afterwards, so
/// long-running flows show up in window models without disturbing (or
/// double-counting in) the real accumulation — and without cloning and
/// rebuilding the whole window every epoch.
///
/// The differ serializes wholesale — reference model, stability report,
/// config, assembler, builder, epoch grid, warm-up state — which is
/// exactly the complete streaming state an online
/// [`checkpoint`](crate::checkpoint) needs: restore a differ, replay
/// the events after the checkpoint offset, and every subsequent
/// snapshot is byte-identical to an uninterrupted run.
#[derive(Debug, Clone)]
pub struct OnlineDiffer {
    reference: BehaviorModel,
    stability: StabilityReport,
    config: FlowDiffConfig,
    assembler: RecordAssembler,
    builder: IncrementalModelBuilder,
    clock: EpochClock,
    /// Set by [`mark_lossy_restore`](Self::mark_lossy_restore): every
    /// signature reports [`SignatureHealth::Warming`] for boundaries
    /// before this log time.
    warm_until: Option<Timestamp>,
    /// Transient transport-degradation note set by the serving loop
    /// (a stalled or dead publisher): while set, every signature gates
    /// [`SignatureHealth::Starved`]. A live transport condition, not
    /// stream state — excluded from equality and serialization like
    /// the timing diagnostics.
    ingest_degraded: Option<String>,
    /// Per-stage boundary timings since the last
    /// [`take_timings`](Self::take_timings) (diagnostics only: excluded
    /// from equality and serialization).
    timings: EpochTimings,
}

/// Equality over the streaming state; wall-clock timings are excluded.
impl PartialEq for OnlineDiffer {
    fn eq(&self, other: &OnlineDiffer) -> bool {
        self.reference == other.reference
            && self.stability == other.stability
            && self.config == other.config
            && self.assembler == other.assembler
            && self.builder == other.builder
            && self.clock == other.clock
            && self.warm_until == other.warm_until
    }
}

/// Hand-written (field-order) serialization that skips the timing
/// diagnostics — the wire format matches what the field-order derive
/// produced before timings existed, so checkpoints stay compatible.
impl Serialize for OnlineDiffer {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.reference.serialize(out);
        self.stability.serialize(out);
        self.config.serialize(out);
        self.assembler.serialize(out);
        self.builder.serialize(out);
        self.clock.serialize(out);
        self.warm_until.serialize(out);
    }
}

impl Deserialize for OnlineDiffer {
    fn deserialize(input: &mut &[u8]) -> Result<Self, serde::Error> {
        Ok(OnlineDiffer {
            reference: BehaviorModel::deserialize(input)?,
            stability: StabilityReport::deserialize(input)?,
            config: FlowDiffConfig::deserialize(input)?,
            assembler: RecordAssembler::deserialize(input)?,
            builder: IncrementalModelBuilder::deserialize(input)?,
            clock: EpochClock::deserialize(input)?,
            warm_until: Option::<Timestamp>::deserialize(input)?,
            ingest_degraded: None,
            timings: EpochTimings::default(),
        })
    }
}

impl OnlineDiffer {
    /// A differ against `reference`, gated by `stability` (use
    /// [`StabilityReport::all_stable`] to diff ungated).
    ///
    /// # Panics
    ///
    /// Panics when the config fails [`FlowDiffConfig::validate`]; use
    /// [`OnlineDiffer::try_new`] to handle invalid configs gracefully.
    pub fn new(
        reference: BehaviorModel,
        stability: StabilityReport,
        config: &FlowDiffConfig,
    ) -> OnlineDiffer {
        OnlineDiffer::try_new(reference, stability, config).expect("invalid FlowDiffConfig")
    }

    /// Like [`OnlineDiffer::new`], but rejects nonsensical configs
    /// (zero epochs, a window shorter than its epoch, …) instead of
    /// letting them panic deep inside the pipeline.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`FlowDiffConfig::validate`].
    pub fn try_new(
        reference: BehaviorModel,
        stability: StabilityReport,
        config: &FlowDiffConfig,
    ) -> Result<OnlineDiffer, ConfigError> {
        config.validate()?;
        Ok(OnlineDiffer {
            reference,
            stability,
            config: config.clone(),
            assembler: RecordAssembler::new(config),
            builder: IncrementalModelBuilder::new(config),
            clock: EpochClock::new(config.online_epoch_us, config.online_window_us),
            warm_until: None,
            ingest_degraded: None,
            timings: EpochTimings::default(),
        })
    }

    /// Returns the per-stage boundary timings accumulated since the
    /// last call (or construction) and resets them — one call per
    /// emitted snapshot gives the per-epoch latency breakdown.
    pub fn take_timings(&mut self) -> EpochTimings {
        std::mem::take(&mut self.timings)
    }

    /// The zero-based index of the next epoch to be emitted.
    pub fn epoch(&self) -> u64 {
        self.clock.epoch()
    }

    /// Declares that this differ was restored from a checkpoint
    /// *without* replaying the events between the checkpoint and the
    /// live stream — its incremental state is missing history. Every
    /// signature is held at [`SignatureHealth::Warming`] (diffs
    /// suppressed) until `config.restore_warmup_us` of log time passes
    /// the restore point; `0` disables the warm-up entirely.
    ///
    /// A *lossless* resume — restore plus replay from the checkpoint's
    /// event offset — must NOT call this: replayed state is exactly the
    /// uninterrupted state, and warming it would break the
    /// byte-identical recovery contract.
    pub fn mark_lossy_restore(&mut self) {
        let now = self.assembler.max_arrival();
        self.warm_until = Some(Timestamp::from_micros(
            now.as_micros()
                .saturating_add(self.config.restore_warmup_us),
        ));
    }

    /// Sets (or clears) the transport-degradation note: while set,
    /// every signature is gated [`SignatureHealth::Starved`] with this
    /// reason — the serving loop calls this when a publisher stream
    /// goes stalled or dead, and clears it when the stream revives.
    /// Transient: never serialized, never part of differ equality.
    pub fn set_ingest_degraded(&mut self, reason: Option<String>) {
        self.ingest_degraded = reason;
    }

    /// Event-level ingestion health accumulated so far (out-of-order
    /// events, duplicate xids, orphans, evictions). Frame-level decode
    /// counters live with the [`LogStream`](netsim::log::LogStream)
    /// feeding this differ; fold them in with
    /// [`IngestHealth::absorb_stream`](crate::records::IngestHealth::absorb_stream).
    pub fn health(&self) -> &crate::records::IngestHealth {
        self.assembler.health()
    }

    /// Feeds one event; returns the snapshots of every epoch boundary
    /// the event's timestamp crossed (usually none, one if the stream
    /// just entered a new epoch, several after a quiet stretch — but
    /// never more than one window's worth: boundaries whose window had
    /// already drained are skipped, their epoch indices consumed, so a
    /// quiet day or a corrupt far-future timestamp cannot force one
    /// model build per crossed epoch).
    pub fn observe(&mut self, event: &ControlEvent) -> Vec<EpochSnapshot> {
        // A quarantined timestamp must not drive the epoch clock either.
        if self.assembler.quarantines(event.ts) {
            let admitted = self.assembler.observe(event);
            debug_assert!(!admitted, "quarantines() and observe() disagree");
            return Vec::new();
        }
        let mut out = Vec::new();
        for (epoch, boundary) in self.clock.advance(event.ts) {
            out.push(self.snapshot_at(epoch, boundary));
        }
        self.assembler.observe(event);
        self.builder.observe_event(event);
        for record in self.assembler.take_completed() {
            self.builder.observe_record(record);
        }
        out
    }

    /// Flushes the final partial epoch, completing every in-flight
    /// episode. None when no event was ever observed.
    pub fn finish(self) -> Option<EpochSnapshot> {
        let OnlineDiffer {
            reference,
            stability,
            config,
            assembler,
            mut builder,
            clock,
            warm_until,
            ingest_degraded,
            timings: _,
        } = self;
        let (_, end) = builder.observed_span()?;
        for record in assembler.finish() {
            builder.observe_record(record);
        }
        let epoch = clock.epoch();
        let start = Timestamp::from_micros(end.as_micros().saturating_sub(clock.window_us()));
        builder.retire_before(start);
        builder.set_span((start, end));
        let model = builder.into_snapshot();
        let mut diff = compare(&reference, &model, &stability, &config);
        let gating = gate_diff(
            &reference,
            &model,
            warm_until,
            end,
            ingest_degraded.as_deref(),
            &mut diff,
        );
        Some(EpochSnapshot {
            epoch,
            window: (start, end),
            records: model.records.len(),
            model,
            diff,
            gating,
        })
    }

    /// Models the window ending at `boundary` and diffs it against the
    /// reference, as epoch `epoch`.
    fn snapshot_at(&mut self, epoch: u64, boundary: Timestamp) -> EpochSnapshot {
        let drained = self.assembler.take_completed();
        if !drained.is_empty() {
            timed(&mut self.timings.observe_us, || {
                for record in drained {
                    self.builder.observe_record(record);
                }
            });
        }
        let start =
            Timestamp::from_micros(boundary.as_micros().saturating_sub(self.clock.window_us()));
        timed(&mut self.timings.retire_us, || {
            self.builder.retire_before(start);
        });
        // Overlay the in-flight episodes onto the maintained window
        // state: they belong in this window's picture, but must complete
        // into the real builder exactly once, so `epoch_snapshot`
        // unwinds them after modeling. Episodes that began before the
        // window start are excluded — the historical probe clone
        // retired them right after adding.
        let opens: Vec<_> = self
            .assembler
            .open_records()
            .into_iter()
            .filter(|r| r.first_seen >= start)
            .collect();
        let model = timed(&mut self.timings.snapshot_us, || {
            self.builder.epoch_snapshot((start, boundary), opens)
        });
        let (diff, gating) = timed(&mut self.timings.diff_us, || {
            let mut diff = compare(&self.reference, &model, &self.stability, &self.config);
            let gating = gate_diff(
                &self.reference,
                &model,
                self.warm_until,
                boundary,
                self.ingest_degraded.as_deref(),
                &mut diff,
            );
            (diff, gating)
        });
        EpochSnapshot {
            epoch,
            window: (start, boundary),
            records: model.records.len(),
            model,
            diff,
            gating,
        }
    }
}

/// One shard worker's streaming state: its slice of the record
/// assembly, and the model builder fed its slice of the raw events.
///
/// The shard's assembler runs with `reorder_slack_us = 0` and
/// `max_time_jump_us = 0` — re-sequencing and quarantine are the
/// splitter's job, and double-applying either would diverge from the
/// single-shard pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardState {
    assembler: RecordAssembler,
    builder: IncrementalModelBuilder,
}

impl ShardState {
    /// A fresh shard worker (also the degraded-restore replacement when
    /// one shard's checkpoint segment is corrupt).
    pub fn fresh(config: &FlowDiffConfig) -> ShardState {
        let shard_config = FlowDiffConfig {
            reorder_slack_us: 0,
            max_time_jump_us: 0,
            ..config.clone()
        };
        ShardState {
            assembler: RecordAssembler::new(&shard_config),
            builder: IncrementalModelBuilder::new(config),
        }
    }

    /// Consumes one released event the way the single-shard assembler
    /// would, from shard `me`'s point of view:
    ///
    /// - every `FlowMod` is processed in full on every shard, so each
    ///   shard's xid table is an identical replica (xids collide across
    ///   tuples, and pairing is global-by-xid — the paired send time and
    ///   output port are in the record bytes),
    /// - an owned event runs the full state machine,
    /// - an unparseable `PacketIn` advances the clock *without* a prune
    ///   check on every shard (the single-shard early-return quirk),
    /// - everything else advances the clock with the prune check, so
    ///   every shard evicts idle state on exactly the single-shard
    ///   schedule (eviction timing decides which straggling replies
    ///   still patch their episode — it is visible in record bytes).
    fn feed(&mut self, me: u32, routed: &RoutedEvent) {
        match routed.class {
            EventClass::FlowMod => {
                self.assembler.observe(&routed.event);
            }
            EventClass::OpaquePacketIn => self.assembler.advance_now(routed.event.ts),
            _ if routed.shard == me => {
                self.assembler.observe(&routed.event);
            }
            _ => self.assembler.advance_clock(routed.event.ts),
        }
    }

    /// Applies one admission step from shard `me`'s point of view.
    /// The step stream interleaves two independent state machines:
    /// arrivals feed the owning shard's model builder (the single-shard
    /// builder sees every event at arrival), releases feed every
    /// shard's assembler through the per-event rule in
    /// [`ShardState::feed`]. Because the two machines share no state
    /// between barriers, replaying the stream in order on a worker
    /// thread reproduces exactly what the coordinator applying each
    /// step inline would have produced.
    fn step(&mut self, me: u32, step: &Step) {
        match step {
            Step::Arrive { shard, event } => {
                if *shard == me {
                    self.builder.observe_event(event);
                }
            }
            Step::Release(routed) => self.feed(me, routed),
        }
    }

    /// Epoch-boundary extraction, mirroring [`OnlineDiffer::snapshot_at`]
    /// per shard: completed records drain into the builder, state older
    /// than `start` retires, and the builder's held window plus the
    /// still-in-window in-flight episodes becomes this shard's merge
    /// input — no probe clone, no per-epoch rebuild.
    fn extract(&mut self, start: Timestamp) -> ShardModel {
        for record in self.assembler.take_completed() {
            self.builder.observe_record(record);
        }
        self.builder.retire_before(start);
        let opens: Vec<_> = self
            .assembler
            .open_records()
            .into_iter()
            .filter(|r| r.first_seen >= start)
            .collect();
        self.builder.shard_model_with_opens(opens)
    }
}

/// Per-shard load figures for the watch `stats:` line.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Records currently held in the shard's window builder.
    pub records: usize,
    /// In-flight episodes in the shard's assembler.
    pub open_episodes: usize,
}

/// Steps per batch shipped to the worker queues: large enough to
/// amortize the channel round-trip and the per-worker scan setup,
/// small enough that admission→model latency stays well under an
/// epoch.
const BATCH_STEPS: usize = 128;

/// Bound of each worker's batch queue, in batches. A full queue blocks
/// admission (backpressure) instead of buffering unboundedly; the
/// [`EpochTimings::queue_depth_peak`] gauge reads above this value
/// when that happens.
const QUEUE_BATCHES: usize = 8;

/// One admission step, broadcast to every worker in arrival order.
#[derive(Debug, Clone)]
enum Step {
    /// An event admitted at arrival: the owning shard's model builder
    /// observes it, exactly when the single-shard builder would.
    Arrive { shard: u32, event: ControlEvent },
    /// An event released by the reorder buffer, in release order:
    /// every shard's assembler consumes it (see [`ShardState::feed`]).
    Release(RoutedEvent),
}

/// A message on one worker's batch queue.
enum WorkerMsg {
    /// A batch of admission steps, shared across all workers, to apply
    /// in order.
    Batch(Arc<Vec<Step>>),
    /// In-band epoch barrier: everything enqueued before it is part of
    /// the closing epoch. The worker extracts its merge partial for
    /// the window starting at `start` and replies with it.
    Barrier { start: Timestamp },
    /// Quiesce: reply once every prior message has been applied.
    Sync,
    /// Crash-drill injection: panic on receipt, mid-queue, the way a
    /// real defect in worker code would.
    Poison,
}

/// A worker's reply on the barrier/quiesce channel.
enum WorkerReply {
    /// The shard's merge input at an epoch barrier, plus the
    /// microseconds the worker spent busy since the previous barrier.
    Partial { model: ShardModel, busy_us: u64 },
    /// Quiesce acknowledgement: the queue is drained.
    Synced,
}

/// The coordinator's handle to one worker: its bounded batch queue,
/// its reply channel, and the shared queue-depth gauge.
#[derive(Debug)]
struct WorkerLink {
    queue: SyncSender<WorkerMsg>,
    replies: Receiver<WorkerReply>,
    depth: Arc<AtomicUsize>,
}

/// The long-lived worker threads of one [`ShardedDiffer`] run.
/// Spawned exactly once (lazily, at the first observed event) and
/// joined when the differ finishes, drops, or is torn down by a
/// supervised restart.
#[derive(Debug)]
struct Pipeline {
    links: Vec<WorkerLink>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pipeline {
    fn spawn(states: &[Arc<Mutex<ShardState>>]) -> Pipeline {
        let mut links = Vec::with_capacity(states.len());
        let mut handles = Vec::with_capacity(states.len());
        for (i, state) in states.iter().enumerate() {
            let (queue, inbox) = sync_channel(QUEUE_BATCHES);
            let (reply_tx, replies) = channel();
            let depth = Arc::new(AtomicUsize::new(0));
            let state = Arc::clone(state);
            let gauge = Arc::clone(&depth);
            let handle = std::thread::Builder::new()
                .name(format!("flowdiff-shard-{i}"))
                .spawn(move || shard_worker(i as u32, state, inbox, reply_tx, gauge))
                .expect("spawning a shard worker thread");
            links.push(WorkerLink {
                queue,
                replies,
                depth,
            });
            handles.push(handle);
        }
        Pipeline { links, handles }
    }
}

impl Drop for Pipeline {
    fn drop(&mut self) {
        // Disconnect every queue first — workers exit their recv loop —
        // then join. A worker that died panicking joins as `Err`, which
        // is deliberately swallowed here: its death already surfaced as
        // a coordinator panic through the closed channels, and Drop may
        // itself be running during that unwind.
        self.links.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The worker loop: apply batches, answer barriers with the shard's
/// merge partial, acknowledge quiesces. Exits when the coordinator
/// drops its end of either channel.
fn shard_worker(
    me: u32,
    state: Arc<Mutex<ShardState>>,
    inbox: Receiver<WorkerMsg>,
    replies: Sender<WorkerReply>,
    depth: Arc<AtomicUsize>,
) {
    let mut busy_us = 0u64;
    while let Ok(msg) = inbox.recv() {
        match msg {
            WorkerMsg::Batch(steps) => {
                let t0 = std::time::Instant::now();
                {
                    let mut st = state.lock().expect("shard state poisoned");
                    for step in steps.iter() {
                        st.step(me, step);
                    }
                }
                busy_us += t0.elapsed().as_micros() as u64;
                depth.fetch_sub(1, Ordering::AcqRel);
            }
            WorkerMsg::Barrier { start } => {
                let t0 = std::time::Instant::now();
                let model = state.lock().expect("shard state poisoned").extract(start);
                busy_us += t0.elapsed().as_micros() as u64;
                let report = std::mem::take(&mut busy_us);
                if replies
                    .send(WorkerReply::Partial {
                        model,
                        busy_us: report,
                    })
                    .is_err()
                {
                    return;
                }
            }
            WorkerMsg::Sync => {
                if replies.send(WorkerReply::Synced).is_err() {
                    return;
                }
            }
            WorkerMsg::Poison => panic!("shard worker {me} poisoned (crash drill)"),
        }
    }
}

/// Steps admitted but not yet shipped to the worker queues, plus the
/// deepest queue observed since the gauge was last harvested. Behind a
/// mutex so `&self` paths (serialization, equality, health) can flush
/// before quiescing; only the coordinator thread ever takes it.
#[derive(Debug, Default)]
struct Pending {
    steps: Vec<Step>,
    peak_depth: usize,
}

/// The sharded online differ: N persistent shard workers behind a
/// [`ShardRouter`], merged into one model (and diffed once) at every
/// epoch boundary.
///
/// The contract is exact equivalence: for any shard count, every
/// emitted [`EpochSnapshot`] is `PartialEq`- and
/// serialization-byte-identical to the single-shard
/// [`OnlineDiffer`]'s. The pieces that make that hold:
///
/// - the **splitter** owns everything arrival-ordered (quarantine,
///   out-of-order accounting, the reorder buffer) plus a release-order
///   xid ledger for the global-by-xid health counts,
/// - every admission becomes `Step`s — the arrival (owner's builder
///   feed, exactly when the single-shard builder sees the event) and
///   the reorder buffer's releases (each worker applies the per-event
///   rule: own flow → full observe, foreign `FlowMod` → full observe,
///   opaque `PacketIn` → clock advance to now, anything else foreign →
///   plain clock advance) — batched and broadcast over bounded
///   channels to **long-lived worker threads** that drain their queues
///   while the router keeps admitting,
/// - epoch boundaries travel **in-band as barrier messages**: a worker
///   reaching the barrier has applied every pre-boundary step and
///   nothing after, so the partial it extracts is exactly the scoped
///   stop-the-world extraction of the previous architecture,
/// - at a barrier, per-shard partials merge on the coordinator via
///   [`IncrementalModelBuilder::merge`] through the same
///   sort-and-assemble core the single-shard snapshot uses.
///
/// Identity is insensitive to the pipelining because each worker's two
/// state machines (builder, assembler) are deterministic functions of
/// their own slice of the step stream, and the stream order is fixed
/// at admission — *when* a worker gets around to applying a batch is
/// unobservable. Anything that wants to look at worker state —
/// serialization, equality, checkpoint capture, the health rollup —
/// first runs the **quiesce protocol** (flush the step buffer, then a
/// `Sync` round-trip per worker), after which the states are exactly
/// what a stop-the-world run would hold.
///
/// Worker threads spawn lazily, exactly once per run, at the first
/// observed event; clones and checkpoint restores start with no
/// threads until they observe. A worker panic (or the crash-drill
/// poison) closes its channels, and the coordinator turns the closed
/// channel into a panic of its own at the next flush, barrier, or
/// quiesce — which is exactly what the supervised restart path in
/// `flowdiff-bench` catches before restoring from the last checkpoint.
///
/// `new(.., 1)` is a valid degenerate configuration, but callers
/// wanting the exact legacy code path (no routing, no channels, no
/// threads) should keep using [`OnlineDiffer`].
///
/// The differ serializes for checkpointing in two granularities: whole
/// (`Serialize`), or split into a shared core plus per-shard segments
/// (the FDIFFCKP v2 layout, so one shard's corrupt segment doesn't
/// lose the fleet — see [`crate::checkpoint::ShardedCheckpoint`]).
#[derive(Debug)]
pub struct ShardedDiffer {
    reference: BehaviorModel,
    stability: StabilityReport,
    config: FlowDiffConfig,
    splitter: ShardRouter,
    /// Shard worker states, shared with the pipeline threads. The
    /// coordinator locks one only at a quiesce point (or, before the
    /// pipeline spawns, when it is the sole owner).
    states: Vec<Arc<Mutex<ShardState>>>,
    /// Released events restored from a checkpoint taken before this
    /// run's pipeline spawned; converted to [`Step::Release`]s at
    /// spawn. Always empty while the pipeline is live, so serialized
    /// cores stay byte-compatible with the pre-pipeline layout.
    chunk: Vec<RoutedEvent>,
    /// The step buffer: at most one batch accumulates here between
    /// queue sends.
    pending: Mutex<Pending>,
    /// The long-lived worker threads; `None` until the first observed
    /// event (and on every clone and checkpoint restore, so capturing
    /// a checkpoint never spawns threads).
    pipeline: Option<Pipeline>,
    clock: EpochClock,
    warm_until: Option<Timestamp>,
    /// Transient transport-degradation note (see
    /// [`OnlineDiffer::set_ingest_degraded`]); excluded from equality
    /// and serialization.
    ingest_degraded: Option<String>,
    /// Cumulative time spent in boundary merges (diagnostics only:
    /// excluded from equality and serialization).
    merge_micros: u64,
    /// Per-stage boundary timings since the last
    /// [`take_timings`](Self::take_timings) (diagnostics only: excluded
    /// from equality and serialization).
    timings: EpochTimings,
    /// Wall-clock start of the current epoch, for the worker busy
    /// fraction (diagnostics only).
    epoch_wall: Option<std::time::Instant>,
}

impl ShardedDiffer {
    /// A sharded differ over `n_shards` workers (clamped to at least
    /// one). The shard count is a runtime deployment choice, not part
    /// of [`FlowDiffConfig`] — checkpoint fingerprints stay comparable
    /// across shard counts.
    ///
    /// # Panics
    ///
    /// Panics when the config fails [`FlowDiffConfig::validate`]; use
    /// [`ShardedDiffer::try_new`] to handle invalid configs gracefully.
    pub fn new(
        reference: BehaviorModel,
        stability: StabilityReport,
        config: &FlowDiffConfig,
        n_shards: usize,
    ) -> ShardedDiffer {
        ShardedDiffer::try_new(reference, stability, config, n_shards)
            .expect("invalid FlowDiffConfig")
    }

    /// Like [`ShardedDiffer::new`], but reports invalid configs.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`FlowDiffConfig::validate`].
    pub fn try_new(
        reference: BehaviorModel,
        stability: StabilityReport,
        config: &FlowDiffConfig,
        n_shards: usize,
    ) -> Result<ShardedDiffer, ConfigError> {
        config.validate()?;
        let n = n_shards.max(1);
        Ok(ShardedDiffer {
            reference,
            stability,
            config: config.clone(),
            splitter: ShardRouter::new(config, n),
            states: (0..n)
                .map(|_| Arc::new(Mutex::new(ShardState::fresh(config))))
                .collect(),
            chunk: Vec::new(),
            pending: Mutex::new(Pending::default()),
            pipeline: None,
            clock: EpochClock::new(config.online_epoch_us, config.online_window_us),
            warm_until: None,
            ingest_degraded: None,
            merge_micros: 0,
            timings: EpochTimings::default(),
            epoch_wall: None,
        })
    }

    /// Number of shard workers.
    pub fn n_shards(&self) -> usize {
        self.states.len()
    }

    /// The zero-based index of the next epoch to be emitted.
    pub fn epoch(&self) -> u64 {
        self.clock.epoch()
    }

    /// Cumulative microseconds spent merging shard partials at epoch
    /// boundaries.
    pub fn merge_micros(&self) -> u64 {
        self.merge_micros
    }

    /// Per-stage boundary timings since the last call, reset on read —
    /// the sharded mirror of [`OnlineDiffer::take_timings`]. Here
    /// `observe_us` covers the boundary flush of the step buffer into
    /// the worker queues, `snapshot_us` the barrier round-trip (queue
    /// drain plus per-shard extraction), `merge_us` the coordinator's
    /// merge of the partials, and `retire_us` stays zero (retirement
    /// happens inside the workers' extraction and is counted with it).
    /// The channel gauges (`queue_depth_peak`, `worker_busy_pct`) are
    /// per-epoch highs rather than sums.
    pub fn take_timings(&mut self) -> EpochTimings {
        std::mem::take(&mut self.timings)
    }

    /// Global ingestion health: the splitter's arrival/ledger counters
    /// plus the shard-local counters (evictions, orphan removals, stale
    /// attaches) summed across workers. Shard-local copies of the
    /// global-by-xid counters are ignored — every shard sees every
    /// `FlowMod`, so summing those would multiply them by N.
    ///
    /// Quiesces the pipeline first, so the rollup is exact — equal to
    /// the single-shard differ's counters at the same point in the
    /// stream, with no one-epoch flush lag.
    pub fn health(&self) -> crate::records::IngestHealth {
        self.quiesce();
        let mut health = *self.splitter.health();
        for state in &self.states {
            let state = state.lock().expect("shard state poisoned");
            let sh = state.assembler.health();
            health.episodes_evicted += sh.episodes_evicted;
            health.orphan_flow_removeds += sh.orphan_flow_removeds;
            health.stale_attaches += sh.stale_attaches;
        }
        health
    }

    /// Folds frame-level decode counters into the global health.
    pub fn absorb_stream(&mut self, stats: netsim::log::StreamStats) {
        self.splitter.absorb_stream(stats);
    }

    /// Per-shard load figures (records held, in-flight episodes),
    /// quiesced so the figures are a consistent cut of the stream.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.quiesce();
        self.states
            .iter()
            .enumerate()
            .map(|(shard, s)| {
                let s = s.lock().expect("shard state poisoned");
                ShardStats {
                    shard,
                    records: s.builder.record_count(),
                    open_episodes: s.assembler.open_len(),
                }
            })
            .collect()
    }

    /// Rough heap footprint of the sharded pipeline's own state (the
    /// splitter, the buffered steps, and every shard's builder).
    /// Approximate by design: worker states are sampled under their
    /// locks without a quiesce.
    pub fn approx_bytes(&self) -> usize {
        let buffered = self.chunk.len()
            + self
                .pending
                .lock()
                .expect("pending steps poisoned")
                .steps
                .len();
        self.splitter.approx_bytes()
            + buffered * std::mem::size_of::<RoutedEvent>()
            + self
                .states
                .iter()
                .map(|s| {
                    s.lock()
                        .expect("shard state poisoned")
                        .builder
                        .approx_bytes()
                })
                .sum::<usize>()
    }

    /// Declares a restore without replay — same contract as
    /// [`OnlineDiffer::mark_lossy_restore`], keyed off the splitter's
    /// arrival clock.
    pub fn mark_lossy_restore(&mut self) {
        let now = self.splitter.max_arrival();
        self.warm_until = Some(Timestamp::from_micros(
            now.as_micros()
                .saturating_add(self.config.restore_warmup_us),
        ));
    }

    /// Sets (or clears) the transport-degradation note — same contract
    /// as [`OnlineDiffer::set_ingest_degraded`].
    pub fn set_ingest_degraded(&mut self, reason: Option<String>) {
        self.ingest_degraded = reason;
    }

    /// Feeds one event — the sharded mirror of
    /// [`OnlineDiffer::observe`]: boundary snapshots are emitted from
    /// state *before* this event, then the event is admitted, routed,
    /// and its steps enqueued toward the workers. Admission returns as
    /// soon as the steps are buffered (or, at a batch boundary, handed
    /// to the queues) — the workers drain concurrently.
    pub fn observe(&mut self, event: &ControlEvent) -> Vec<EpochSnapshot> {
        self.ensure_pipeline();
        // A quarantined timestamp must not drive the epoch clock either.
        if self.splitter.quarantines(event.ts) {
            let mut released = Vec::new();
            let admitted = self.splitter.admit(event, &mut released);
            debug_assert!(admitted.is_none(), "quarantines() and admit() disagree");
            self.enqueue(None, released);
            return Vec::new();
        }
        let mut out = Vec::new();
        for (epoch, boundary) in self.clock.advance(event.ts) {
            out.push(self.snapshot_at(epoch, boundary));
        }
        let mut released = Vec::new();
        let owner = self.splitter.admit(event, &mut released);
        let arrive = owner.map(|shard| Step::Arrive {
            shard,
            event: event.clone(),
        });
        self.enqueue(arrive, released);
        out
    }

    /// Injects a panic into shard `shard`'s worker, in-queue — the
    /// crash-drill hook behind `flowdiff-bench crashdrill
    /// --kill-worker`. The worker dies when it reaches the poison;
    /// the coordinator's next flush, barrier, or quiesce then panics
    /// on the closed channel, which is the supervised restart path's
    /// cue to restore from the last checkpoint.
    pub fn poison_worker(&mut self, shard: usize) {
        self.ensure_pipeline();
        let pipeline = self.pipeline.as_ref().expect("pipeline just ensured");
        let link = &pipeline.links[shard % pipeline.links.len()];
        let _ = link.queue.send(WorkerMsg::Poison);
    }

    /// Flushes the final partial epoch across all shards. None when no
    /// event was ever observed.
    pub fn finish(mut self) -> Option<EpochSnapshot> {
        // Everything still in flight — a restored pre-pipeline chunk,
        // the reorder buffer's tail, the step buffer — becomes steps.
        {
            let mut pending = self.pending.lock().expect("pending steps poisoned");
            let mut steps: Vec<Step> = std::mem::take(&mut self.chunk)
                .into_iter()
                .map(Step::Release)
                .collect();
            steps.append(&mut pending.steps);
            pending.steps = steps;
        }
        {
            let mut pending = self.pending.lock().expect("pending steps poisoned");
            pending
                .steps
                .extend(self.splitter.drain().into_iter().map(Step::Release));
        }
        if self.pipeline.is_some() {
            self.flush_pending();
            self.quiesce();
        } else {
            // Never observed (or restored and immediately finished):
            // no threads to hand the tail to — apply it inline.
            let steps =
                std::mem::take(&mut self.pending.lock().expect("pending steps poisoned").steps);
            for (i, state) in self.states.iter().enumerate() {
                let mut st = state.lock().expect("shard state poisoned");
                for step in &steps {
                    st.step(i as u32, step);
                }
            }
        }
        // Tear the pipeline down (queues disconnect, workers join);
        // after this the coordinator is the sole owner of every state.
        drop(self.pipeline.take());
        let shards: Vec<ShardState> = std::mem::take(&mut self.states)
            .into_iter()
            .map(|state| match Arc::try_unwrap(state) {
                Ok(mutex) => mutex.into_inner().expect("shard state poisoned"),
                Err(shared) => shared.lock().expect("shard state poisoned").clone(),
            })
            .collect();
        let end = shards
            .iter()
            .filter_map(|s| s.builder.observed_span())
            .map(|(_, hi)| hi)
            .max()?;
        let epoch = self.clock.epoch();
        let start = self.clock.window_start(end);
        let mut parts = Vec::with_capacity(shards.len());
        for shard in shards {
            let ShardState {
                assembler,
                mut builder,
            } = shard;
            for record in assembler.finish() {
                builder.observe_record(record);
            }
            builder.retire_before(start);
            parts.push(builder.into_shard_model());
        }
        let model =
            IncrementalModelBuilder::merge(parts, Some((start, end)), &self.config, workers());
        let mut diff = compare(&self.reference, &model, &self.stability, &self.config);
        let gating = gate_diff(
            &self.reference,
            &model,
            self.warm_until,
            end,
            self.ingest_degraded.as_deref(),
            &mut diff,
        );
        Some(EpochSnapshot {
            epoch,
            window: (start, end),
            records: model.records.len(),
            model,
            diff,
            gating,
        })
    }

    /// Spawns the worker threads on first use — exactly once per run.
    /// A chunk restored from a pre-quiesce checkpoint becomes the head
    /// of the step stream here, before any newly admitted event.
    fn ensure_pipeline(&mut self) {
        if self.pipeline.is_some() {
            return;
        }
        self.pipeline = Some(Pipeline::spawn(&self.states));
        self.epoch_wall = Some(std::time::Instant::now());
        if !self.chunk.is_empty() {
            let restored = std::mem::take(&mut self.chunk);
            let mut pending = self.pending.lock().expect("pending steps poisoned");
            let mut steps: Vec<Step> = restored.into_iter().map(Step::Release).collect();
            steps.append(&mut pending.steps);
            pending.steps = steps;
        }
    }

    /// Buffers one admission's steps (releases in release order, then
    /// the arrival) and ships a batch once enough accumulate.
    fn enqueue(&self, arrive: Option<Step>, released: Vec<RoutedEvent>) {
        let full = {
            let mut pending = self.pending.lock().expect("pending steps poisoned");
            pending
                .steps
                .extend(released.into_iter().map(Step::Release));
            pending.steps.extend(arrive);
            pending.steps.len() >= BATCH_STEPS
        };
        if full {
            self.flush_pending();
        }
    }

    /// Ships the buffered steps as one `Arc`-shared batch to every
    /// worker queue. The queues are bounded: a worker more than
    /// [`QUEUE_BATCHES`] batches behind blocks admission here
    /// (backpressure) instead of letting the buffer grow without
    /// bound.
    ///
    /// # Panics
    ///
    /// Panics when a worker has exited — its queue is closed — which
    /// propagates a worker panic into the coordinator for the
    /// supervised restart path to catch.
    fn flush_pending(&self) {
        let Some(pipeline) = self.pipeline.as_ref() else {
            return;
        };
        let mut pending = self.pending.lock().expect("pending steps poisoned");
        if pending.steps.is_empty() {
            return;
        }
        let batch = Arc::new(std::mem::take(&mut pending.steps));
        for (i, link) in pipeline.links.iter().enumerate() {
            let depth = link.depth.fetch_add(1, Ordering::AcqRel) + 1;
            pending.peak_depth = pending.peak_depth.max(depth);
            if link
                .queue
                .send(WorkerMsg::Batch(Arc::clone(&batch)))
                .is_err()
            {
                panic!("shard worker {i} exited mid-run; cannot deliver a batch");
            }
        }
    }

    /// The drain-to-barrier quiesce: flush the step buffer, then a
    /// `Sync` round-trip per worker. When this returns, every worker
    /// has applied every step admitted so far and its state is exactly
    /// the stop-the-world state — safe to lock for serialization,
    /// equality, checkpoint capture, or the health rollup. A no-op
    /// before the pipeline spawns (the coordinator is sole owner and
    /// nothing is in flight).
    ///
    /// # Panics
    ///
    /// Panics when a worker has exited (see [`Self::flush_pending`]).
    fn quiesce(&self) {
        let Some(pipeline) = self.pipeline.as_ref() else {
            return;
        };
        self.flush_pending();
        for (i, link) in pipeline.links.iter().enumerate() {
            if link.queue.send(WorkerMsg::Sync).is_err() {
                panic!("shard worker {i} exited mid-run; cannot quiesce");
            }
        }
        for (i, link) in pipeline.links.iter().enumerate() {
            match link.replies.recv() {
                Ok(WorkerReply::Synced) => {}
                _ => panic!("shard worker {i} died during quiesce"),
            }
        }
    }

    /// Boundary: flush the step buffer, send the in-band barrier,
    /// collect every shard's partial, merge once, diff once. Admission
    /// stalls only for the barrier round-trip — between boundaries the
    /// workers consume their queues while the router admits.
    fn snapshot_at(&mut self, epoch: u64, boundary: Timestamp) -> EpochSnapshot {
        let flush_start = std::time::Instant::now();
        self.flush_pending();
        self.timings.observe_us += flush_start.elapsed().as_micros() as u64;
        let start = self.clock.window_start(boundary);
        let barrier_start = std::time::Instant::now();
        let pipeline = self
            .pipeline
            .as_ref()
            .expect("observe() spawns the pipeline before advancing the clock");
        for (i, link) in pipeline.links.iter().enumerate() {
            if link.queue.send(WorkerMsg::Barrier { start }).is_err() {
                panic!("shard worker {i} exited mid-run; cannot reach the epoch barrier");
            }
        }
        let mut parts: Vec<ShardModel> = Vec::with_capacity(pipeline.links.len());
        let mut busy_peak_us = 0u64;
        for (i, link) in pipeline.links.iter().enumerate() {
            match link.replies.recv() {
                Ok(WorkerReply::Partial { model, busy_us }) => {
                    busy_peak_us = busy_peak_us.max(busy_us);
                    parts.push(model);
                }
                _ => panic!("shard worker {i} died before the epoch barrier"),
            }
        }
        self.timings.snapshot_us += barrier_start.elapsed().as_micros() as u64;
        // The busy gauge needs a real wall-clock span. With no prior
        // mark (a differ restored from a checkpoint or deserialized
        // mid-stream), fabricating a 1µs wall would saturate the gauge
        // to a spurious 100% — skip the update and just seed the mark.
        if let Some(prev) = self.epoch_wall {
            let wall_us = (prev.elapsed().as_micros() as u64).max(1);
            self.timings.worker_busy_pct = self
                .timings
                .worker_busy_pct
                .max(busy_peak_us.min(wall_us) * 100 / wall_us);
        }
        self.epoch_wall = Some(std::time::Instant::now());
        {
            let mut pending = self.pending.lock().expect("pending steps poisoned");
            self.timings.queue_depth_peak =
                self.timings.queue_depth_peak.max(pending.peak_depth as u64);
            pending.peak_depth = 0;
        }
        let merge_start = std::time::Instant::now();
        let model =
            IncrementalModelBuilder::merge(parts, Some((start, boundary)), &self.config, workers());
        let merged_us = merge_start.elapsed().as_micros() as u64;
        self.merge_micros += merged_us;
        self.timings.merge_us += merged_us;
        let (diff, gating) = timed(&mut self.timings.diff_us, || {
            let mut diff = compare(&self.reference, &model, &self.stability, &self.config);
            let gating = gate_diff(
                &self.reference,
                &model,
                self.warm_until,
                boundary,
                self.ingest_degraded.as_deref(),
                &mut diff,
            );
            (diff, gating)
        });
        EpochSnapshot {
            epoch,
            window: (start, boundary),
            records: model.records.len(),
            model,
            diff,
            gating,
        }
    }

    /// The shared-core half of the FDIFFCKP v2 split: everything except
    /// the per-shard worker states. Quiesces first, so the serialized
    /// chunk is empty whenever the pipeline is live — the wire layout
    /// is unchanged from the pre-pipeline format, and a core written by
    /// either architecture restores into this one.
    pub(crate) fn core_to_bytes(&self) -> Vec<u8> {
        self.quiesce();
        let mut out = Vec::new();
        self.reference.serialize(&mut out);
        self.stability.serialize(&mut out);
        self.config.serialize(&mut out);
        self.splitter.serialize(&mut out);
        self.chunk.serialize(&mut out);
        self.clock.serialize(&mut out);
        self.warm_until.serialize(&mut out);
        out
    }

    /// The per-shard halves of the FDIFFCKP v2 split, captured under a
    /// quiesce so each segment is a consistent cut of the stream.
    pub(crate) fn shards_to_bytes(&self) -> Vec<Vec<u8>> {
        self.quiesce();
        self.states
            .iter()
            .map(|s| serde::to_vec(&*s.lock().expect("shard state poisoned")))
            .collect()
    }

    /// Reassembles a differ from a decoded core and per-shard states,
    /// positionally. A `None` slot is a salvaged (corrupt) segment and
    /// comes back as a [`ShardState::fresh`] worker; the caller decides
    /// whether that warrants [`ShardedDiffer::mark_lossy_restore`].
    pub(crate) fn from_core_and_shards(
        core: &[u8],
        shards: Vec<Option<ShardState>>,
    ) -> Result<ShardedDiffer, serde::Error> {
        let mut input = core;
        let reference = BehaviorModel::deserialize(&mut input)?;
        let stability = StabilityReport::deserialize(&mut input)?;
        let config = FlowDiffConfig::deserialize(&mut input)?;
        let splitter = ShardRouter::deserialize(&mut input)?;
        let chunk = Vec::<RoutedEvent>::deserialize(&mut input)?;
        let clock = EpochClock::deserialize(&mut input)?;
        let warm_until = Option::<Timestamp>::deserialize(&mut input)?;
        if !input.is_empty() {
            return Err(serde::Error::custom(format!(
                "{} trailing bytes in sharded core",
                input.len()
            )));
        }
        if shards.len() != splitter.n_shards() {
            return Err(serde::Error::custom(format!(
                "shard count mismatch: core routes {} ways, {} segments",
                splitter.n_shards(),
                shards.len()
            )));
        }
        let states = shards
            .into_iter()
            .map(|s| Arc::new(Mutex::new(s.unwrap_or_else(|| ShardState::fresh(&config)))))
            .collect();
        Ok(ShardedDiffer {
            reference,
            stability,
            config,
            splitter,
            states,
            chunk,
            pending: Mutex::new(Pending::default()),
            pipeline: None,
            clock,
            warm_until,
            ingest_degraded: None,
            merge_micros: 0,
            timings: EpochTimings::default(),
            epoch_wall: None,
        })
    }
}

/// Equality over the streaming state (quiesced first, so in-flight
/// batches are settled); the wall-clock diagnostics are excluded.
impl PartialEq for ShardedDiffer {
    fn eq(&self, other: &ShardedDiffer) -> bool {
        self.quiesce();
        other.quiesce();
        self.reference == other.reference
            && self.stability == other.stability
            && self.config == other.config
            && self.splitter == other.splitter
            && self.chunk == other.chunk
            && self.clock == other.clock
            && self.warm_until == other.warm_until
            && self.states.len() == other.states.len()
            && self.states.iter().zip(&other.states).all(|(a, b)| {
                Arc::ptr_eq(a, b)
                    || *a.lock().expect("shard state poisoned")
                        == *b.lock().expect("shard state poisoned")
            })
    }
}

/// A clone carries the full quiesced streaming state but no threads —
/// its pipeline spawns lazily if and when it observes. This is what
/// lets checkpoint capture clone a live differ without forking the
/// worker fleet.
impl Clone for ShardedDiffer {
    fn clone(&self) -> ShardedDiffer {
        self.quiesce();
        ShardedDiffer {
            reference: self.reference.clone(),
            stability: self.stability.clone(),
            config: self.config.clone(),
            splitter: self.splitter.clone(),
            states: self
                .states
                .iter()
                .map(|s| Arc::new(Mutex::new(s.lock().expect("shard state poisoned").clone())))
                .collect(),
            chunk: self.chunk.clone(),
            pending: Mutex::new(Pending::default()),
            pipeline: None,
            clock: self.clock.clone(),
            warm_until: self.warm_until,
            ingest_degraded: self.ingest_degraded.clone(),
            merge_micros: self.merge_micros,
            timings: self.timings,
            epoch_wall: None,
        }
    }
}

impl Serialize for ShardedDiffer {
    fn serialize(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.core_to_bytes());
        // The worker states in the `Vec<ShardState>` wire layout
        // (u64 count, then each element), written under the quiesce
        // `core_to_bytes` just performed.
        (self.states.len() as u64).serialize(out);
        for state in &self.states {
            state.lock().expect("shard state poisoned").serialize(out);
        }
    }
}

impl Deserialize for ShardedDiffer {
    fn deserialize(input: &mut &[u8]) -> Result<Self, serde::Error> {
        let reference = BehaviorModel::deserialize(input)?;
        let stability = StabilityReport::deserialize(input)?;
        let config = FlowDiffConfig::deserialize(input)?;
        let splitter = ShardRouter::deserialize(input)?;
        let chunk = Vec::<RoutedEvent>::deserialize(input)?;
        let clock = EpochClock::deserialize(input)?;
        let warm_until = Option::<Timestamp>::deserialize(input)?;
        let shards = Vec::<ShardState>::deserialize(input)?;
        if shards.len() != splitter.n_shards() {
            return Err(serde::Error::custom("shard count mismatch"));
        }
        Ok(ShardedDiffer {
            reference,
            stability,
            config,
            splitter,
            states: shards
                .into_iter()
                .map(|s| Arc::new(Mutex::new(s)))
                .collect(),
            chunk,
            pending: Mutex::new(Pending::default()),
            pipeline: None,
            clock,
            warm_until,
            ingest_degraded: None,
            merge_micros: 0,
            timings: EpochTimings::default(),
            epoch_wall: None,
        })
    }
}

/// Worker threads for a merge's signature fan-out.
fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::change::ChangeDirection;
    use netsim::topology::Topology;
    use openflow::types::Timestamp;
    use workloads::prelude::*;

    fn scenario_log(
        seed: u64,
        fault: Option<(Timestamp, Fault)>,
    ) -> (ControllerLog, FlowDiffConfig) {
        let mut topo = Topology::lab();
        let (catalog, _) = install_services(&mut topo, "of7");
        let ip = |n: &str| topo.host_ip(topo.node_by_name(n).unwrap());
        let (s13, s4, s14, s25) = (ip("S13"), ip("S4"), ip("S14"), ip("S25"));
        let mut sc = Scenario::new(
            topo,
            seed,
            Timestamp::from_secs(1),
            Timestamp::from_secs(41),
        );
        sc.services(catalog.clone())
            .app(templates::three_tier(
                "app",
                vec![s13],
                vec![s4],
                vec![s14],
                None,
            ))
            .client(ClientWorkload {
                client: s25,
                entry_hosts: vec![s13],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(10.0),
                request_bytes: 2_048,
            });
        if let Some((at, f)) = fault {
            sc.fault(at, f);
        }
        let result = sc.run();
        let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());
        (result.log, config)
    }

    #[test]
    fn online_differ_snapshots_every_epoch() {
        let (log1, config) = scenario_log(1, None);
        let m1 = crate::model::BehaviorModel::build(&log1, &config);
        let stability = crate::stability::analyze(&log1, &m1, &config);
        let (log2, _) = scenario_log(2, None);
        let mut differ = OnlineDiffer::new(m1, stability, &config);
        let mut snaps = Vec::new();
        for event in log2.events() {
            snaps.extend(differ.observe(event));
        }
        let last = differ.finish().expect("events were observed");
        assert!(
            snaps.len() >= 5,
            "40s log at 5s epochs: {} snaps",
            snaps.len()
        );
        for (i, s) in snaps.iter().enumerate() {
            assert_eq!(s.epoch, i as u64, "epochs count up from zero");
            assert!(s.window.0 <= s.window.1);
            assert!(s.window.1.saturating_since(s.window.0) <= config.online_window_us);
            assert_eq!(s.records, s.model.records.len());
        }
        for w in snaps.windows(2) {
            assert_eq!(
                w[1].window.1.saturating_since(w[0].window.1),
                config.online_epoch_us,
                "window end advances by exactly one epoch"
            );
        }
        assert_eq!(last.epoch, snaps.len() as u64);
        let peak = snaps.iter().map(|s| s.records).max().unwrap();
        assert!(peak > 100, "steady traffic fills the windows: peak {peak}");
        // The capture has a quiet tail (flow-entry expirations trail the
        // last request): the sliding window must retire the old flows
        // rather than accumulate forever.
        assert!(
            snaps.last().unwrap().records < peak / 2,
            "trailing windows shrink as traffic stops"
        );
    }

    #[test]
    fn online_flush_with_full_width_window_matches_batch_build() {
        // With the window sized to the whole capture, nothing is ever
        // retired, so the final flush must reproduce the batch model
        // bit for bit — and diff empty against itself.
        let (log, mut config) = scenario_log(1, None);
        let (t0, t1) = log.time_range().unwrap();
        config.online_window_us = t1.saturating_since(t0);
        let batch = crate::model::BehaviorModel::build(&log, &config);
        let stability = crate::stability::StabilityReport::all_stable(&batch);
        let mut differ = OnlineDiffer::new(batch.clone(), stability, &config);
        for event in log.events() {
            differ.observe(event);
        }
        let last = differ.finish().unwrap();
        assert_eq!(last.model, batch, "streamed window model == batch model");
        assert!(last.diff.is_empty(), "a model diffed against itself");
    }

    #[test]
    fn same_conditions_produce_empty_diff() {
        let (log1, config) = scenario_log(1, None);
        let (log2, _) = scenario_log(2, None);
        let m1 = crate::model::BehaviorModel::build(&log1, &config);
        let m2 = crate::model::BehaviorModel::build(&log2, &config);
        let stability = crate::stability::analyze(&log1, &m1, &config);
        let diff = compare(&m1, &m2, &stability, &config);
        assert!(
            diff.is_empty(),
            "two healthy runs must not differ: {diff:#?}"
        );
    }

    #[test]
    fn host_slowdown_shifts_dd_only() {
        let (log1, config) = scenario_log(1, None);
        let mut topo = Topology::lab();
        let (_, _) = install_services(&mut topo, "of7");
        let s4 = topo.node_by_name("S4").unwrap();
        let (log2, _) = scenario_log(
            2,
            Some((
                Timestamp::ZERO,
                Fault::HostSlowdown {
                    host: s4,
                    extra_us: 150_000,
                },
            )),
        );
        let m1 = crate::model::BehaviorModel::build(&log1, &config);
        let m2 = crate::model::BehaviorModel::build(&log2, &config);
        let stability = crate::stability::analyze(&log1, &m1, &config);
        let diff = compare(&m1, &m2, &stability, &config);
        let g = &diff.group_diffs[0];
        assert!(
            g.of_kind(SignatureKind::Dd).count() > 0,
            "DD must shift under host slowdown"
        );
        assert_eq!(
            g.of_kind(SignatureKind::Cg).count(),
            0,
            "CG must be unaffected"
        );
        assert_eq!(diff.infra_of_kind(SignatureKind::Pt).count(), 0);
        assert_eq!(diff.infra_of_kind(SignatureKind::Crt).count(), 0);
    }

    #[test]
    fn app_crash_changes_cg_and_ci() {
        let (log1, config) = scenario_log(1, None);
        let mut topo = Topology::lab();
        let (_, _) = install_services(&mut topo, "of7");
        let s4 = topo.node_by_name("S4").unwrap();
        let (log2, _) = scenario_log(
            2,
            Some((
                Timestamp::ZERO,
                Fault::AppCrash {
                    host: s4,
                    port: 8080,
                },
            )),
        );
        let m1 = crate::model::BehaviorModel::build(&log1, &config);
        let m2 = crate::model::BehaviorModel::build(&log2, &config);
        let stability = crate::stability::analyze(&log1, &m1, &config);
        let diff = compare(&m1, &m2, &stability, &config);
        let g = &diff.group_diffs[0];
        assert!(
            g.of_kind(SignatureKind::Cg)
                .any(|c| c.direction == ChangeDirection::Removed),
            "app -> db edge must disappear: {:#?}",
            g.changes
        );
    }

    fn hello_at(ts: Timestamp) -> ControlEvent {
        ControlEvent {
            ts,
            dpid: openflow::types::DatapathId(1),
            direction: netsim::log::Direction::ToController,
            xid: openflow::types::Xid(0),
            msg: openflow::messages::OfpMessage::Hello,
        }
    }

    #[test]
    fn first_epoch_busy_gauge_is_not_saturated_under_light_load() {
        // Regression: the first epoch barrier used to fabricate a 1µs
        // wall when `epoch_wall` was unseeded, saturating
        // `worker_busy_pct` to 100 on an almost idle pipeline. Two
        // hellos and a deliberate 10ms pause are nowhere near a busy
        // epoch, so the first-epoch gauge must stay well under 100.
        let config = FlowDiffConfig::default();
        let empty = netsim::log::ControllerLog::new();
        let reference = crate::model::BehaviorModel::build(&empty, &config);
        let stability = crate::stability::StabilityReport::all_stable(&reference);
        let mut differ = ShardedDiffer::new(reference, stability, &config, 2);

        assert!(differ
            .observe(&hello_at(Timestamp::from_secs(1)))
            .is_empty());
        std::thread::sleep(std::time::Duration::from_millis(10));
        let snaps = differ.observe(&hello_at(Timestamp::from_micros(
            1_000_000 + config.online_epoch_us,
        )));
        assert_eq!(snaps.len(), 1, "crossing one epoch boundary snapshots");
        let timings = differ.take_timings();
        assert!(
            timings.worker_busy_pct < 100,
            "first-epoch busy gauge spuriously saturated: {}%",
            timings.worker_busy_pct
        );
    }

    #[test]
    fn far_future_event_cannot_flood_the_epoch_clock() {
        let config = FlowDiffConfig::default();
        let empty = netsim::log::ControllerLog::new();
        let reference = crate::model::BehaviorModel::build(&empty, &config);
        let stability = crate::stability::StabilityReport::all_stable(&reference);
        let mut differ = OnlineDiffer::try_new(reference, stability, &config).unwrap();

        assert!(differ
            .observe(&hello_at(Timestamp::from_secs(1)))
            .is_empty());
        // 10 000 epochs ahead: one snapshot per crossed epoch would be
        // 10 000 model builds. Only the draining window may be modeled.
        let jump = Timestamp::from_micros(1_000_000 + 10_000 * config.online_epoch_us);
        let flood = differ.observe(&hello_at(jump));
        let drain = config.online_window_us.div_ceil(config.online_epoch_us) + 1;
        assert!(
            (flood.len() as u64) <= drain,
            "{} snapshots for one quiet stretch",
            flood.len()
        );
        // The skipped boundaries still consume epoch indices, and the
        // differ keeps answering afterwards.
        let next = differ.observe(&hello_at(jump + config.online_epoch_us));
        assert_eq!(next.len(), 1);
        assert!(next[0].epoch >= 10_000, "epoch index reflects log time");
    }

    #[test]
    fn quarantined_timestamp_leaves_the_epoch_clock_alone() {
        let config = FlowDiffConfig {
            max_time_jump_us: 60_000_000,
            ..FlowDiffConfig::default()
        };
        let empty = netsim::log::ControllerLog::new();
        let reference = crate::model::BehaviorModel::build(&empty, &config);
        let stability = crate::stability::StabilityReport::all_stable(&reference);
        let mut differ = OnlineDiffer::try_new(reference, stability, &config).unwrap();

        assert!(differ
            .observe(&hello_at(Timestamp::from_secs(1)))
            .is_empty());
        let corrupt = Timestamp::from_micros(1_000_000 + (1 << 50));
        assert!(
            differ.observe(&hello_at(corrupt)).is_empty(),
            "corrupt timestamp must not emit snapshots"
        );
        assert_eq!(differ.health().time_jumps, 1);
        // The epoch clock still follows honest time.
        let honest = differ.observe(&hello_at(Timestamp::from_secs(7)));
        assert_eq!(honest.len(), 1);
        assert_eq!(honest[0].epoch, 0);
    }

    #[test]
    fn starved_window_suppresses_missing_flow_flood() {
        // A rich reference, but the live stream delivers only
        // keepalives: every baseline flow would read as "missing"
        // without input-health gating.
        let (log, config) = scenario_log(1, None);
        let reference = crate::model::BehaviorModel::build(&log, &config);
        assert!(!reference.records.is_empty());
        let stability = crate::stability::analyze(&log, &reference, &config);
        let mut differ = OnlineDiffer::new(reference, stability, &config);
        let mut snaps = Vec::new();
        for s in 0..7u64 {
            snaps.extend(differ.observe(&hello_at(Timestamp::from_secs(1 + 5 * s))));
        }
        assert!(!snaps.is_empty());
        for snap in &snaps {
            assert!(
                snap.diff.is_empty(),
                "starved epoch {} must not flood: {:#?}",
                snap.epoch,
                snap.diff
            );
            assert_eq!(
                snap.health_of(SignatureKind::Fs),
                SignatureHealth::Starved {
                    reason: "no flow records in window".to_string()
                }
            );
            assert!(
                snap.suppressed().count() >= RECORD_FED.len(),
                "all record-fed signatures are suppressed"
            );
            assert!(snap.diff.missing_groups.is_empty());
        }
    }

    #[test]
    fn lossy_restore_warms_then_recovers() {
        let config = FlowDiffConfig {
            restore_warmup_us: 30_000_000,
            ..FlowDiffConfig::default()
        };
        let empty = netsim::log::ControllerLog::new();
        let reference = crate::model::BehaviorModel::build(&empty, &config);
        let stability = crate::stability::StabilityReport::all_stable(&reference);
        let mut differ = OnlineDiffer::try_new(reference, stability, &config).unwrap();
        assert!(differ
            .observe(&hello_at(Timestamp::from_secs(1)))
            .is_empty());
        // Restored without replay at t=1s: hold diffs until t=31s.
        differ.mark_lossy_restore();
        let early = differ.observe(&hello_at(Timestamp::from_secs(6)));
        assert_eq!(early.len(), 1);
        assert_eq!(
            early[0].health_of(SignatureKind::Dd),
            SignatureHealth::Warming {
                remaining_us: 25_000_000
            }
        );
        let late = differ.observe(&hello_at(Timestamp::from_secs(40)));
        assert!(!late.is_empty());
        for snap in &late {
            let expected = if snap.window.1 < Timestamp::from_secs(31) {
                matches!(
                    snap.health_of(SignatureKind::Dd),
                    SignatureHealth::Warming { .. }
                )
            } else {
                snap.health_of(SignatureKind::Dd) == SignatureHealth::Healthy
            };
            assert!(
                expected,
                "boundary {:?}: wrong verdict {:?}",
                snap.window.1,
                snap.health_of(SignatureKind::Dd)
            );
        }
    }

    #[test]
    fn checkpointed_differ_resumes_mid_stream_identically() {
        let (log1, config) = scenario_log(1, None);
        let m1 = crate::model::BehaviorModel::build(&log1, &config);
        let stability = crate::stability::analyze(&log1, &m1, &config);
        let (log2, _) = scenario_log(2, None);
        let events: Vec<ControlEvent> = log2.events().to_vec();
        let cut = events.len() / 2;

        let mut straight = OnlineDiffer::new(m1.clone(), stability.clone(), &config);
        let mut interrupted = OnlineDiffer::new(m1, stability, &config);
        let mut straight_snaps = Vec::new();
        let mut resumed_snaps = Vec::new();
        for event in &events[..cut] {
            straight_snaps.extend(straight.observe(event));
            resumed_snaps.extend(interrupted.observe(event));
        }
        // Kill: serialize, forget, restore through the guarded format.
        let ckpt = crate::checkpoint::Checkpoint::capture(&interrupted, cut as u64, &config);
        drop(interrupted);
        let restored = crate::checkpoint::Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        let (mut resumed, offset) = restored.resume(&config).unwrap();
        assert_eq!(offset as usize, cut);
        assert_eq!(resumed, straight, "restored state == uninterrupted state");
        for event in &events[cut..] {
            straight_snaps.extend(straight.observe(event));
            resumed_snaps.extend(resumed.observe(event));
        }
        let a = straight.finish().unwrap();
        let b = resumed.finish().unwrap();
        assert_eq!(straight_snaps, resumed_snaps);
        assert_eq!(a, b);
        assert_eq!(
            serde::to_vec(&a),
            serde::to_vec(&b),
            "final snapshots serialize byte-identically"
        );
    }

    #[test]
    fn sharded_differ_matches_single_shard_byte_for_byte() {
        // A fault in the live stream makes the per-epoch diffs
        // non-empty, so equality covers the change lists, not just
        // empty-vs-empty.
        let (log1, config) = scenario_log(1, None);
        let mut topo = Topology::lab();
        let (_, _) = install_services(&mut topo, "of7");
        let s4 = topo.node_by_name("S4").unwrap();
        let (log2, _) = scenario_log(
            2,
            Some((
                Timestamp::ZERO,
                Fault::HostSlowdown {
                    host: s4,
                    extra_us: 150_000,
                },
            )),
        );
        let m1 = crate::model::BehaviorModel::build(&log1, &config);
        let stability = crate::stability::analyze(&log1, &m1, &config);

        let mut single = OnlineDiffer::new(m1.clone(), stability.clone(), &config);
        let mut single_snaps = Vec::new();
        for event in log2.events() {
            single_snaps.extend(single.observe(event));
        }
        let single_health = *single.health();
        let single_last = single.finish().unwrap();
        assert!(
            single_snaps.iter().any(|s| !s.diff.is_empty()),
            "the faulted stream must produce non-trivial diffs"
        );

        for n_shards in [1usize, 2, 3] {
            let mut sharded = ShardedDiffer::new(m1.clone(), stability.clone(), &config, n_shards);
            let mut snaps = Vec::new();
            for event in log2.events() {
                snaps.extend(sharded.observe(event));
            }
            assert_eq!(
                sharded.health(),
                single_health,
                "{n_shards}-shard health rollup == single-shard health"
            );
            let last = sharded.finish().unwrap();
            assert_eq!(
                snaps, single_snaps,
                "{n_shards}-shard snapshots == single-shard snapshots"
            );
            assert_eq!(last, single_last, "{n_shards}-shard final flush");
            assert_eq!(
                serde::to_vec(&last),
                serde::to_vec(&single_last),
                "{n_shards}-shard final snapshot serializes byte-identically"
            );
            for (a, b) in snaps.iter().zip(&single_snaps) {
                assert_eq!(
                    serde::to_vec(a),
                    serde::to_vec(b),
                    "epoch {} serializes byte-identically under {n_shards} shards",
                    a.epoch
                );
            }
        }
    }

    #[test]
    fn sharded_checkpoint_resumes_mid_stream_identically() {
        let (log1, config) = scenario_log(1, None);
        let m1 = crate::model::BehaviorModel::build(&log1, &config);
        let stability = crate::stability::analyze(&log1, &m1, &config);
        let (log2, _) = scenario_log(2, None);
        let events: Vec<ControlEvent> = log2.events().to_vec();
        let cut = events.len() / 2;

        let mut straight = ShardedDiffer::new(m1.clone(), stability.clone(), &config, 3);
        let mut interrupted = ShardedDiffer::new(m1, stability, &config, 3);
        let mut straight_snaps = Vec::new();
        let mut resumed_snaps = Vec::new();
        for event in &events[..cut] {
            straight_snaps.extend(straight.observe(event));
            resumed_snaps.extend(interrupted.observe(event));
        }
        // Kill mid-epoch: serialize through the v2 segmented format,
        // restore via the version-dispatching entry point.
        let ckpt = crate::checkpoint::ShardedCheckpoint::capture(&interrupted, cut as u64, &config);
        drop(interrupted);
        let restored = match crate::checkpoint::AnyCheckpoint::from_bytes(&ckpt.to_bytes()) {
            Ok(crate::checkpoint::AnyCheckpoint::Sharded(c)) => c,
            other => panic!("expected a sharded checkpoint, got {other:?}"),
        };
        assert!(restored.salvaged_shards.is_empty());
        let (mut resumed, offset) = restored.resume(&config).unwrap();
        assert_eq!(offset as usize, cut);
        assert_eq!(resumed, straight, "restored state == uninterrupted state");
        for event in &events[cut..] {
            straight_snaps.extend(straight.observe(event));
            resumed_snaps.extend(resumed.observe(event));
        }
        let a = straight.finish().unwrap();
        let b = resumed.finish().unwrap();
        assert_eq!(straight_snaps, resumed_snaps);
        assert_eq!(a, b);
        assert_eq!(
            serde::to_vec(&a),
            serde::to_vec(&b),
            "final snapshots serialize byte-identically"
        );
    }
}
