//! The model diff engine (Section IV-A).
//!
//! Compares the signatures of two behavior models group by group through
//! the [`Signature`] trait: each signature diffs itself, gates the
//! result through its [`StabilityMask`], and renders the survivors into
//! the tagged [`Change`] vocabulary. The engine never pattern-matches on
//! concrete change types — adding a tenth signature means implementing
//! the trait, not editing this file.

use serde::{Deserialize, Serialize};

use crate::change::{Change, SignatureKind};
use crate::config::FlowDiffConfig;
use crate::groups::match_groups;
use crate::model::BehaviorModel;
use crate::signatures::{DiffCtx, Signature, StabilityMask};
use crate::stability::StabilityReport;

/// Differences in one application group matched across the two models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupDiff {
    /// Index of the group in the reference model.
    pub ref_idx: usize,
    /// Index of the matched group in the current model.
    pub cur_idx: usize,
    /// All stability-gated changes of this group, tagged by signature.
    pub changes: Vec<Change>,
}

impl GroupDiff {
    /// True when nothing changed in this group.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// The changes of one signature kind.
    pub fn of_kind(&self, kind: SignatureKind) -> impl Iterator<Item = &Change> {
        self.changes.iter().filter(move |c| c.kind == kind)
    }
}

/// The complete diff of two behavior models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelDiff {
    /// Per-matched-group differences.
    pub group_diffs: Vec<GroupDiff>,
    /// Groups present only in the current model (indices into it).
    pub new_groups: Vec<usize>,
    /// Groups present only in the reference model (indices into it).
    pub missing_groups: Vec<usize>,
    /// Infrastructure changes (PT, ISL, LU, CRT), tagged by signature.
    pub infra: Vec<Change>,
}

impl ModelDiff {
    /// True when the models agree on every stable signature.
    pub fn is_empty(&self) -> bool {
        self.group_diffs.iter().all(GroupDiff::is_empty)
            && self.new_groups.is_empty()
            && self.missing_groups.is_empty()
            && self.infra.is_empty()
    }

    /// The infrastructure changes of one signature kind.
    pub fn infra_of_kind(&self, kind: SignatureKind) -> impl Iterator<Item = &Change> {
        self.infra.iter().filter(move |c| c.kind == kind)
    }
}

/// Diffs one signature pair through the trait, gated by the stability
/// mask when the stability pass produced one (a missing mask means the
/// signature was not judged: fall back to its own all-stable mask).
fn gated<S: Signature>(
    reference: &S,
    current: &S,
    ctx: &DiffCtx<'_>,
    mask: Option<&StabilityMask>,
) -> Vec<Change> {
    match mask {
        Some(m) => reference.tagged_diff(current, ctx, m),
        None => reference.tagged_diff(current, ctx, &reference.stable_mask()),
    }
}

/// Compares two models, gated by the reference model's stability report
/// (index-aligned with `reference.groups`).
pub fn compare(
    reference: &BehaviorModel,
    current: &BehaviorModel,
    stability: &StabilityReport,
    config: &FlowDiffConfig,
) -> ModelDiff {
    let ref_groups: Vec<_> = reference.groups.iter().map(|g| g.group.clone()).collect();
    let cur_groups: Vec<_> = current.groups.iter().map(|g| g.group.clone()).collect();
    let (pairs, missing_groups, new_groups) = match_groups(&ref_groups, &cur_groups);
    // A current group whose members all belonged to one reference group
    // is a *fragment* of it (e.g. a tier cut off by a failure), not a
    // new application: the per-group CG diff already covers it.
    let new_groups: Vec<usize> = new_groups
        .into_iter()
        .filter(|&gi| {
            let members = &cur_groups[gi].members;
            !ref_groups
                .iter()
                .any(|r| members.iter().all(|m| r.members.contains(m)))
        })
        .collect();

    let ctx = DiffCtx {
        config,
        current_records: &current.records,
    };

    let group_diffs = pairs
        .into_iter()
        .map(|(ri, ci)| {
            let r = &reference.groups[ri];
            let c = &current.groups[ci];
            let stab = &stability.per_group[ri];

            let mut changes = Vec::new();
            changes.extend(gated(
                &r.connectivity,
                &c.connectivity,
                &ctx,
                stab.mask(SignatureKind::Cg),
            ));
            changes.extend(gated(
                &r.flow_stats,
                &c.flow_stats,
                &ctx,
                stab.mask(SignatureKind::Fs),
            ));
            changes.extend(gated(
                &r.interaction,
                &c.interaction,
                &ctx,
                stab.mask(SignatureKind::Ci),
            ));
            changes.extend(gated(
                &r.delay,
                &c.delay,
                &ctx,
                stab.mask(SignatureKind::Dd),
            ));
            changes.extend(gated(
                &r.correlation,
                &c.correlation,
                &ctx,
                stab.mask(SignatureKind::Pc),
            ));

            GroupDiff {
                ref_idx: ri,
                cur_idx: ci,
                changes,
            }
        })
        .collect();

    // Infrastructure signatures are judged wholesale and never gated by
    // the application stability pass.
    let mut infra = Vec::new();
    infra.extend(gated(&reference.topology, &current.topology, &ctx, None));
    infra.extend(gated(&reference.latency, &current.latency, &ctx, None));
    infra.extend(gated(
        &reference.utilization,
        &current.utilization,
        &ctx,
        None,
    ));
    infra.extend(gated(&reference.response, &current.response, &ctx, None));

    ModelDiff {
        group_diffs,
        new_groups,
        missing_groups,
        infra,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::change::ChangeDirection;
    use netsim::topology::Topology;
    use openflow::types::Timestamp;
    use workloads::prelude::*;

    fn scenario_log(
        seed: u64,
        fault: Option<(Timestamp, Fault)>,
    ) -> (ControllerLog, FlowDiffConfig) {
        let mut topo = Topology::lab();
        let (catalog, _) = install_services(&mut topo, "of7");
        let ip = |n: &str| topo.host_ip(topo.node_by_name(n).unwrap());
        let (s13, s4, s14, s25) = (ip("S13"), ip("S4"), ip("S14"), ip("S25"));
        let mut sc = Scenario::new(
            topo,
            seed,
            Timestamp::from_secs(1),
            Timestamp::from_secs(41),
        );
        sc.services(catalog.clone())
            .app(templates::three_tier(
                "app",
                vec![s13],
                vec![s4],
                vec![s14],
                None,
            ))
            .client(ClientWorkload {
                client: s25,
                entry_hosts: vec![s13],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(10.0),
                request_bytes: 2_048,
            });
        if let Some((at, f)) = fault {
            sc.fault(at, f);
        }
        let result = sc.run();
        let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());
        (result.log, config)
    }

    #[test]
    fn same_conditions_produce_empty_diff() {
        let (log1, config) = scenario_log(1, None);
        let (log2, _) = scenario_log(2, None);
        let m1 = crate::model::BehaviorModel::build(&log1, &config);
        let m2 = crate::model::BehaviorModel::build(&log2, &config);
        let stability = crate::stability::analyze(&log1, &m1, &config);
        let diff = compare(&m1, &m2, &stability, &config);
        assert!(
            diff.is_empty(),
            "two healthy runs must not differ: {diff:#?}"
        );
    }

    #[test]
    fn host_slowdown_shifts_dd_only() {
        let (log1, config) = scenario_log(1, None);
        let mut topo = Topology::lab();
        let (_, _) = install_services(&mut topo, "of7");
        let s4 = topo.node_by_name("S4").unwrap();
        let (log2, _) = scenario_log(
            2,
            Some((
                Timestamp::ZERO,
                Fault::HostSlowdown {
                    host: s4,
                    extra_us: 150_000,
                },
            )),
        );
        let m1 = crate::model::BehaviorModel::build(&log1, &config);
        let m2 = crate::model::BehaviorModel::build(&log2, &config);
        let stability = crate::stability::analyze(&log1, &m1, &config);
        let diff = compare(&m1, &m2, &stability, &config);
        let g = &diff.group_diffs[0];
        assert!(
            g.of_kind(SignatureKind::Dd).count() > 0,
            "DD must shift under host slowdown"
        );
        assert_eq!(
            g.of_kind(SignatureKind::Cg).count(),
            0,
            "CG must be unaffected"
        );
        assert_eq!(diff.infra_of_kind(SignatureKind::Pt).count(), 0);
        assert_eq!(diff.infra_of_kind(SignatureKind::Crt).count(), 0);
    }

    #[test]
    fn app_crash_changes_cg_and_ci() {
        let (log1, config) = scenario_log(1, None);
        let mut topo = Topology::lab();
        let (_, _) = install_services(&mut topo, "of7");
        let s4 = topo.node_by_name("S4").unwrap();
        let (log2, _) = scenario_log(
            2,
            Some((
                Timestamp::ZERO,
                Fault::AppCrash {
                    host: s4,
                    port: 8080,
                },
            )),
        );
        let m1 = crate::model::BehaviorModel::build(&log1, &config);
        let m2 = crate::model::BehaviorModel::build(&log2, &config);
        let stability = crate::stability::analyze(&log1, &m1, &config);
        let diff = compare(&m1, &m2, &stability, &config);
        let g = &diff.group_diffs[0];
        assert!(
            g.of_kind(SignatureKind::Cg)
                .any(|c| c.direction == ChangeDirection::Removed),
            "app -> db edge must disappear: {:#?}",
            g.changes
        );
    }
}
