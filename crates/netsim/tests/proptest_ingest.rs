//! Property-based tests for the incremental capture decoder: on any
//! byte mutation and any chunking, [`FrameDecoder`] must never panic
//! and must emit the same events, error sites, and skip accounting as
//! the batch [`LogStream`] over the complete buffer.

use std::borrow::Cow;

use proptest::prelude::*;

use netsim::log::{
    ControlEvent, ControllerLog, DecodeError, Direction, FrameDecoder, LogStream, StreamStats,
};
use openflow::actions::Action;
use openflow::match_fields::OfMatch;
use openflow::messages::{FlowMod, OfpMessage, PacketIn, PacketInReason};
use openflow::types::{BufferId, DatapathId, PortNo, Timestamp, Xid};

fn event(i: u64, kind: u8) -> ControlEvent {
    let msg = match kind % 4 {
        0 => OfpMessage::Hello,
        1 => OfpMessage::FlowMod(FlowMod::add(OfMatch::any(), 1).action(Action::output(PortNo(2)))),
        2 => OfpMessage::PacketIn(PacketIn {
            buffer_id: BufferId::NO_BUFFER,
            total_len: 6,
            in_port: PortNo(3),
            reason: PacketInReason::NoMatch,
            data: b"abcdef".to_vec().into(),
        }),
        _ => OfpMessage::BarrierRequest,
    };
    ControlEvent {
        ts: Timestamp::from_micros(1_000 + i * 250),
        dpid: DatapathId(1 + i % 3),
        direction: if i.is_multiple_of(2) {
            Direction::ToController
        } else {
            Direction::FromController
        },
        xid: Xid(i as u32),
        msg,
    }
}

fn batch_decode(bytes: &[u8]) -> (Vec<Result<ControlEvent, DecodeError>>, StreamStats) {
    match LogStream::from_wire_bytes(bytes) {
        Ok(mut stream) => {
            let items = stream.by_ref().map(|r| r.map(Cow::into_owned)).collect();
            (items, stream.stats())
        }
        Err(e) => (vec![Err(e)], StreamStats::default()),
    }
}

fn chunked_decode(
    bytes: &[u8],
    cuts: &[usize],
) -> (Vec<Result<ControlEvent, DecodeError>>, StreamStats) {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut at = 0;
    for &cut in cuts {
        let cut = at + cut % (bytes.len() - at + 1);
        if dec.is_done() {
            break;
        }
        dec.push(&bytes[at..cut], &mut out);
        at = cut;
    }
    if !dec.is_done() {
        dec.push(&bytes[at..], &mut out);
        dec.finish(&mut out);
    }
    (out, dec.stats())
}

/// Error equality up to the documented divergence: a length-overflow
/// reported before end-of-stream carries the locally available bytes.
fn errors_equivalent(a: &DecodeError, b: &DecodeError) -> bool {
    match (a, b) {
        (
            DecodeError::LengthOverflow {
                offset: ao,
                claimed: ac,
                ..
            },
            DecodeError::LengthOverflow {
                offset: bo,
                claimed: bc,
                ..
            },
        ) => ao == bo && ac == bc,
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any byte mutations + any truncation + any chunking: no panics,
    /// and the incremental decode agrees with the batch decode.
    #[test]
    fn mutated_capture_decodes_identically_chunked_and_batch(
        kinds in prop::collection::vec(any::<u8>(), 1..12),
        flips in prop::collection::vec((any::<usize>(), 1u8..=255), 0..6),
        cut_tail in any::<usize>(),
        cuts in prop::collection::vec(any::<usize>(), 0..10),
    ) {
        let log: ControllerLog = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| event(i as u64, k))
            .collect();
        let mut bytes = log.to_wire_bytes();
        for &(at, mask) in &flips {
            let idx = at % bytes.len();
            bytes[idx] ^= mask;
        }
        bytes.truncate(bytes.len() - cut_tail % (bytes.len() / 4 + 1));

        let (batch_items, batch_stats) = batch_decode(&bytes);
        let (inc_items, inc_stats) = chunked_decode(&bytes, &cuts);
        prop_assert_eq!(inc_items.len(), batch_items.len());
        for (inc, batch) in inc_items.iter().zip(&batch_items) {
            match (inc, batch) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(a), Err(b)) => {
                    prop_assert!(errors_equivalent(a, b), "{:?} vs {:?}", a, b)
                }
                other => prop_assert!(false, "ok/err disagreement: {:?}", other),
            }
        }
        prop_assert_eq!(inc_stats, batch_stats);
    }
}
