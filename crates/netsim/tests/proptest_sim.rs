//! Property-based tests for the simulator: conservation laws, control-
//! message pairing, and determinism over arbitrary workloads.

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use proptest::prelude::*;

use netsim::config::SimConfig;
use netsim::engine::Simulation;
use netsim::flows::{FlowPhase, FlowSpec};
use netsim::topology::Topology;
use openflow::match_fields::FlowKey;
use openflow::types::Timestamp;

/// A random workload: (src host idx, dst host idx, sport, bytes, start ms).
fn arb_workload() -> impl Strategy<Value = Vec<(usize, usize, u16, u64, u64)>> {
    prop::collection::vec(
        (
            0usize..8,
            0usize..8,
            10_000u16..60_000,
            64u64..100_000,
            0u64..5_000,
        ),
        1..40,
    )
}

fn run(workload: &[(usize, usize, u16, u64, u64)], seed: u64) -> Simulation {
    let topo = Topology::tree(4, 2);
    let hosts: Vec<Ipv4Addr> = topo.hosts().map(|(id, _)| topo.host_ip(id)).collect();
    let mut sim = Simulation::new(topo, SimConfig::default(), seed);
    for &(s, d, sport, bytes, at_ms) in workload {
        if s == d {
            continue; // self-flows are not meaningful
        }
        let key = FlowKey::tcp(hosts[s], sport, hosts[d], 80);
        sim.schedule_flow(
            Timestamp::from_millis(1_000 + at_ms),
            FlowSpec::new(key, bytes, 5_000),
        );
    }
    sim.run_until(Timestamp::from_secs(120));
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_flow_terminates(workload in arb_workload()) {
        let sim = run(&workload, 7);
        let stats = sim.stats();
        prop_assert_eq!(
            stats.flows_completed + stats.flows_dead,
            stats.flows_started,
            "every started flow must end completed or dead"
        );
        for f in sim.flow_states() {
            prop_assert!(
                matches!(f.phase, FlowPhase::Completed | FlowPhase::Dead),
                "flow stuck in {:?}",
                f.phase
            );
        }
    }

    #[test]
    fn packet_ins_and_flow_mods_pair_one_to_one(workload in arb_workload()) {
        let mut sim = run(&workload, 11);
        let log = sim.take_log();
        let pi_xids: Vec<_> = log.packet_ins().map(|(_, _, x, _)| x).collect();
        let fm_xids: BTreeSet<_> = log.flow_mods().map(|(_, _, x, _)| x).collect();
        prop_assert_eq!(pi_xids.len(), fm_xids.len());
        // xids are unique per PacketIn and every one is answered
        let unique: BTreeSet<_> = pi_xids.iter().copied().collect();
        prop_assert_eq!(unique.len(), pi_xids.len());
        for x in &pi_xids {
            prop_assert!(fm_xids.contains(x));
        }
    }

    #[test]
    fn flow_removed_counters_cover_payload(workload in arb_workload()) {
        let mut sim = run(&workload, 13);
        let specs: Vec<(u64, u64)> = sim
            .flow_states()
            .iter()
            .map(|f| (f.spec.bytes, f.wire_bytes))
            .collect();
        // wire bytes never shrink below the payload (no loss configured)
        for (spec_bytes, wire_bytes) in specs {
            prop_assert!(wire_bytes >= spec_bytes || wire_bytes == 0);
        }
        let log = sim.take_log();
        for (_, _, fr) in log.flow_removeds() {
            prop_assert!(fr.byte_count > 0);
            prop_assert!(fr.packet_count > 0);
        }
    }

    #[test]
    fn log_is_time_ordered_after_finish(workload in arb_workload()) {
        let mut sim = run(&workload, 17);
        let log = sim.take_log();
        let ts: Vec<_> = log.events().iter().map(|e| e.ts).collect();
        prop_assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn same_seed_same_outcome(workload in arb_workload(), seed in 0u64..1_000) {
        let mut a = run(&workload, seed);
        let mut b = run(&workload, seed);
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.take_log(), b.take_log());
    }

    #[test]
    fn crt_is_nonnegative_and_bounded(workload in arb_workload()) {
        let mut sim = run(&workload, 23);
        let log = sim.take_log();
        for (pi_ts, dpid, xid, _) in log.packet_ins() {
            let fm = log
                .flow_mods()
                .find(|(_, d, x, _)| *x == xid && *d == dpid)
                .expect("paired FlowMod");
            let crt = fm.0.saturating_since(pi_ts);
            prop_assert!(crt > 0, "service takes nonzero time");
            // queueing is bounded by the workload size x service time
            prop_assert!(crt < 10_000_000, "CRT exploded: {crt}us");
        }
    }
}
