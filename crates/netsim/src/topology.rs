//! Data center topologies: nodes, links, ports, and path computation.
//!
//! Two builders reproduce the paper's experimental setups:
//!
//! * [`Topology::lab`] — the NEC lab data center of Section V: ~30 servers
//!   behind seven OpenFlow switches and two legacy switches, where every
//!   server-to-server path crosses at least one OpenFlow switch;
//! * [`Topology::tree`] — the 320-server simulation topology of Section
//!   V-C: racks of 20 servers under top-of-rack switches, groups of four
//!   ToRs under two aggregation switches, and all aggregation switches
//!   under two cores.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::net::Ipv4Addr;

use openflow::types::{DatapathId, PortNo};
use serde::{Deserialize, Serialize};

/// Index of a node in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// What a node is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An end host (physical server or VM) with an IP address.
    Host {
        /// The host's IPv4 address.
        ip: Ipv4Addr,
    },
    /// A programmable switch speaking OpenFlow to the controller.
    OfSwitch {
        /// The switch datapath id.
        dpid: DatapathId,
    },
    /// A traditional (non-programmable) L2 switch.
    LegacySwitch,
}

/// One node of the topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Human-readable name (e.g. `S13`, `tor3`, `core1`).
    pub name: String,
    /// Node role.
    pub kind: NodeKind,
}

impl Node {
    /// True for end hosts.
    pub fn is_host(&self) -> bool {
        matches!(self.kind, NodeKind::Host { .. })
    }

    /// True for OpenFlow switches.
    pub fn is_of_switch(&self) -> bool {
        matches!(self.kind, NodeKind::OfSwitch { .. })
    }

    /// True for any switch (OpenFlow or legacy).
    pub fn is_switch(&self) -> bool {
        !self.is_host()
    }
}

/// A bidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// One-way propagation latency in microseconds.
    pub latency_us: u64,
    /// Capacity in bytes per second.
    pub capacity_bps: u64,
}

impl Link {
    /// The endpoint opposite `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an endpoint of this link.
    pub fn peer_of(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else {
            assert_eq!(n, self.b, "node {n} is not on this link");
            self.a
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct PortMap {
    /// Outgoing attachments in port order: `(local port, link, peer)`.
    ports: Vec<(PortNo, LinkId, NodeId)>,
}

/// A data center topology: a graph of hosts and switches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    adj: Vec<PortMap>,
    by_ip: HashMap<Ipv4Addr, NodeId>,
    by_name: HashMap<String, NodeId>,
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Topology {
        Topology {
            nodes: Vec::new(),
            links: Vec::new(),
            adj: Vec::new(),
            by_ip: HashMap::new(),
            by_name: HashMap::new(),
        }
    }

    /// Adds an end host.
    ///
    /// # Panics
    ///
    /// Panics if the name or IP address is already in use.
    pub fn add_host(&mut self, name: &str, ip: Ipv4Addr) -> NodeId {
        assert!(
            !self.by_ip.contains_key(&ip),
            "duplicate host ip {ip} ({name})"
        );
        let id = self.push_node(name, NodeKind::Host { ip });
        self.by_ip.insert(ip, id);
        id
    }

    /// Adds an OpenFlow switch. The datapath id is derived from the node
    /// index so it is stable and unique.
    ///
    /// # Panics
    ///
    /// Panics if the name is already in use.
    pub fn add_of_switch(&mut self, name: &str) -> NodeId {
        let dpid = DatapathId(0x1000 + self.nodes.len() as u64);
        self.push_node(name, NodeKind::OfSwitch { dpid })
    }

    /// Adds a legacy (non-OpenFlow) switch.
    ///
    /// # Panics
    ///
    /// Panics if the name is already in use.
    pub fn add_legacy_switch(&mut self, name: &str) -> NodeId {
        self.push_node(name, NodeKind::LegacySwitch)
    }

    fn push_node(&mut self, name: &str, kind: NodeKind) -> NodeId {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate node name {name}"
        );
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name: name.to_owned(),
            kind,
        });
        self.adj.push(PortMap { ports: Vec::new() });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Connects two nodes with a bidirectional link, assigning the next
    /// free port number on each side.
    ///
    /// # Panics
    ///
    /// Panics on a self-link (`a == b`) or an out-of-range node id.
    pub fn connect(&mut self, a: NodeId, b: NodeId, latency_us: u64, capacity_bps: u64) -> LinkId {
        assert_ne!(a, b, "self-links are not allowed");
        let link = LinkId(self.links.len() as u32);
        self.links.push(Link {
            a,
            b,
            latency_us,
            capacity_bps,
        });
        let pa = PortNo(self.adj[a.idx()].ports.len() as u16 + 1);
        let pb = PortNo(self.adj[b.idx()].ports.len() as u16 + 1);
        self.adj[a.idx()].ports.push((pa, link, b));
        self.adj[b.idx()].ports.push((pb, link, a));
        link
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.idx()]
    }

    /// The link with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.idx()]
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterates over all hosts.
    pub fn hosts(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.node_ids()
            .map(|id| (id, self.node(id)))
            .filter(|(_, n)| n.is_host())
    }

    /// Iterates over all OpenFlow switches.
    pub fn of_switches(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.node_ids()
            .map(|id| (id, self.node(id)))
            .filter(|(_, n)| n.is_of_switch())
    }

    /// Finds a host node by IP address.
    pub fn host_by_ip(&self, ip: Ipv4Addr) -> Option<NodeId> {
        self.by_ip.get(&ip).copied()
    }

    /// Finds a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// The IP of a host node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a host.
    pub fn host_ip(&self, id: NodeId) -> Ipv4Addr {
        match self.node(id).kind {
            NodeKind::Host { ip } => ip,
            _ => panic!("{id} is not a host"),
        }
    }

    /// The datapath id of an OpenFlow switch node.
    pub fn dpid_of(&self, id: NodeId) -> Option<DatapathId> {
        match self.node(id).kind {
            NodeKind::OfSwitch { dpid } => Some(dpid),
            _ => None,
        }
    }

    /// The node carrying the given datapath id.
    pub fn node_of_dpid(&self, dpid: DatapathId) -> Option<NodeId> {
        self.node_ids().find(|&id| self.dpid_of(id) == Some(dpid))
    }

    /// Neighbors of `n` as `(local port, link, peer)` triples in port
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn ports_of(&self, n: NodeId) -> &[(PortNo, LinkId, NodeId)] {
        &self.adj[n.idx()].ports
    }

    /// The local port on `from` that leads to adjacent node `to`, or
    /// `None` when the nodes are not adjacent.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range.
    pub fn port_towards(&self, from: NodeId, to: NodeId) -> Option<PortNo> {
        self.adj[from.idx()]
            .ports
            .iter()
            .find(|(_, _, peer)| *peer == to)
            .map(|(p, _, _)| *p)
    }

    /// The link between two adjacent nodes, or `None` when the nodes are
    /// not adjacent.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adj[a.idx()]
            .ports
            .iter()
            .find(|(_, _, peer)| *peer == b)
            .map(|(_, l, _)| *l)
    }

    /// Latency-weighted shortest path from `src` to `dst` (inclusive),
    /// avoiding nodes in `avoid`. Hosts other than the endpoints are never
    /// traversed.
    ///
    /// Returns `None` when no path exists.
    pub fn shortest_path<F>(&self, src: NodeId, dst: NodeId, avoid: F) -> Option<Vec<NodeId>>
    where
        F: Fn(NodeId) -> bool,
    {
        if src == dst {
            return Some(vec![src]);
        }
        // Uniform small weights: BFS by hop count, deterministic by port
        // order, is both faster and stable for our topologies, which have
        // homogeneous link latencies per tier.
        let mut prev: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut seen = vec![false; self.nodes.len()];
        let mut q = VecDeque::new();
        seen[src.idx()] = true;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            for &(_, _, v) in &self.adj[u.idx()].ports {
                if seen[v.idx()] || avoid(v) {
                    continue;
                }
                // Do not route *through* hosts.
                if v != dst && self.node(v).is_host() {
                    continue;
                }
                seen[v.idx()] = true;
                prev[v.idx()] = Some(u);
                if v == dst {
                    let mut path = vec![dst];
                    let mut cur = dst;
                    while let Some(p) = prev[cur.idx()] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                q.push_back(v);
            }
        }
        None
    }

    // ------------------------------------------------------------ builders

    /// The lab data center of Section V: 25 physical servers `S1..S25` and
    /// five VMs `VM1..VM5`, seven OpenFlow switches (`of1..of7`), and two
    /// legacy switches (`leg1`, `leg2`). `of7` is the core; every
    /// server-to-server path crosses at least one OpenFlow switch.
    pub fn lab() -> Topology {
        let mut t = Topology::new();
        let core = t.add_of_switch("of7");
        let mut edges = Vec::new();
        for i in 1..=6 {
            let sw = t.add_of_switch(&format!("of{i}"));
            t.connect(sw, core, 20, 1_000_000_000);
            edges.push(sw);
        }
        let leg1 = t.add_legacy_switch("leg1");
        let leg2 = t.add_legacy_switch("leg2");
        t.connect(leg1, core, 20, 1_000_000_000);
        t.connect(leg2, core, 20, 1_000_000_000);

        // S1..S25 round-robin over the six OpenFlow edge switches.
        for i in 1..=25u32 {
            let ip = Ipv4Addr::new(10, 0, (i / 250) as u8, (i % 250) as u8 + 1);
            let host = t.add_host(&format!("S{i}"), ip);
            let sw = edges[(i as usize - 1) % edges.len()];
            t.connect(host, sw, 50, 1_000_000_000);
        }
        // Five VMs behind the legacy switches (they still cross of7).
        for i in 1..=5u32 {
            let ip = Ipv4Addr::new(10, 0, 10, i as u8);
            let host = t.add_host(&format!("VM{i}"), ip);
            let sw = if i % 2 == 0 { leg1 } else { leg2 };
            t.connect(host, sw, 50, 1_000_000_000);
        }
        t
    }

    /// A hybrid variant of the lab data center (Section VI, incremental
    /// deployment): only the core switch speaks OpenFlow; the six edge
    /// switches are legacy. Every server-to-server path still crosses
    /// the OpenFlow core, but FlowDiff's visibility drops to one
    /// observation point per path.
    pub fn lab_hybrid() -> Topology {
        let mut t = Topology::new();
        let core = t.add_of_switch("of7");
        let mut edges = Vec::new();
        for i in 1..=6 {
            let sw = t.add_legacy_switch(&format!("leg-edge{i}"));
            t.connect(sw, core, 20, 1_000_000_000);
            edges.push(sw);
        }
        for i in 1..=25u32 {
            let ip = Ipv4Addr::new(10, 0, (i / 250) as u8, (i % 250) as u8 + 1);
            let host = t.add_host(&format!("S{i}"), ip);
            let sw = edges[(i as usize - 1) % edges.len()];
            t.connect(host, sw, 50, 1_000_000_000);
        }
        t
    }

    /// The simulation topology of Section V-C: `racks` racks of
    /// `hosts_per_rack` servers each under a ToR switch; every group of
    /// four ToRs connects to two aggregation switches; all aggregation
    /// switches connect to two cores.
    ///
    /// `Topology::tree(16, 20)` reproduces the paper's 320-server network.
    ///
    /// # Panics
    ///
    /// Panics if `racks` is zero or not a multiple of 4.
    pub fn tree(racks: u32, hosts_per_rack: u32) -> Topology {
        assert!(
            racks > 0 && racks.is_multiple_of(4),
            "racks must be a multiple of 4"
        );
        let mut t = Topology::new();
        let core1 = t.add_of_switch("core1");
        let core2 = t.add_of_switch("core2");
        let groups = racks / 4;
        let mut aggs = Vec::new();
        for g in 0..groups {
            let a1 = t.add_of_switch(&format!("agg{}a", g + 1));
            let a2 = t.add_of_switch(&format!("agg{}b", g + 1));
            for &a in &[a1, a2] {
                t.connect(a, core1, 10, 10_000_000_000);
                t.connect(a, core2, 10, 10_000_000_000);
            }
            aggs.push((a1, a2));
        }
        for r in 0..racks {
            let tor = t.add_of_switch(&format!("tor{}", r + 1));
            let (a1, a2) = aggs[(r / 4) as usize];
            t.connect(tor, a1, 10, 10_000_000_000);
            t.connect(tor, a2, 10, 10_000_000_000);
            for h in 0..hosts_per_rack {
                let ip = Ipv4Addr::new(10, 1 + (r / 250) as u8, (r % 250) as u8, h as u8 + 1);
                let host = t.add_host(&format!("h{}-{}", r + 1, h + 1), ip);
                t.connect(host, tor, 30, 1_000_000_000);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_assigns_sequential_ports() {
        let mut t = Topology::new();
        let sw = t.add_of_switch("sw");
        let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 0, 1));
        let h2 = t.add_host("h2", Ipv4Addr::new(10, 0, 0, 2));
        t.connect(h1, sw, 10, 1_000);
        t.connect(h2, sw, 10, 1_000);
        assert_eq!(t.port_towards(sw, h1), Some(PortNo(1)));
        assert_eq!(t.port_towards(sw, h2), Some(PortNo(2)));
        assert_eq!(t.port_towards(h1, sw), Some(PortNo(1)));
        assert_eq!(t.port_towards(h1, h2), None);
    }

    #[test]
    fn link_lookup_and_peer() {
        let mut t = Topology::new();
        let a = t.add_of_switch("a");
        let b = t.add_of_switch("b");
        let l = t.connect(a, b, 5, 99);
        assert_eq!(t.link_between(a, b), Some(l));
        assert_eq!(t.link_between(b, a), Some(l));
        assert_eq!(t.link(l).peer_of(a), b);
        assert_eq!(t.link(l).latency_us, 5);
    }

    #[test]
    #[should_panic(expected = "not on this link")]
    fn peer_of_foreign_node_panics() {
        let mut t = Topology::new();
        let a = t.add_of_switch("a");
        let b = t.add_of_switch("b");
        let c = t.add_of_switch("c");
        let l = t.connect(a, b, 5, 99);
        let _ = t.link(l).peer_of(c);
    }

    #[test]
    fn shortest_path_simple_line() {
        let mut t = Topology::new();
        let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 0, 1));
        let s1 = t.add_of_switch("s1");
        let s2 = t.add_of_switch("s2");
        let h2 = t.add_host("h2", Ipv4Addr::new(10, 0, 0, 2));
        t.connect(h1, s1, 1, 1);
        t.connect(s1, s2, 1, 1);
        t.connect(s2, h2, 1, 1);
        let path = t.shortest_path(h1, h2, |_| false).unwrap();
        assert_eq!(path, vec![h1, s1, s2, h2]);
    }

    #[test]
    fn shortest_path_never_crosses_other_hosts() {
        // h1 - s1 - h3 - s2 - h2 plus a longer pure-switch detour.
        let mut t = Topology::new();
        let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 0, 1));
        let h2 = t.add_host("h2", Ipv4Addr::new(10, 0, 0, 2));
        let h3 = t.add_host("h3", Ipv4Addr::new(10, 0, 0, 3));
        let s1 = t.add_of_switch("s1");
        let s2 = t.add_of_switch("s2");
        let s3 = t.add_of_switch("s3");
        t.connect(h1, s1, 1, 1);
        t.connect(s1, h3, 1, 1);
        t.connect(h3, s2, 1, 1);
        t.connect(s2, h2, 1, 1);
        t.connect(s1, s3, 1, 1);
        t.connect(s3, s2, 1, 1);
        let path = t.shortest_path(h1, h2, |_| false).unwrap();
        assert!(!path.contains(&h3), "path must not relay through a host");
        assert_eq!(path, vec![h1, s1, s3, s2, h2]);
    }

    #[test]
    fn shortest_path_avoids_failed_switches() {
        let mut t = Topology::new();
        let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 0, 1));
        let h2 = t.add_host("h2", Ipv4Addr::new(10, 0, 0, 2));
        let s1 = t.add_of_switch("s1");
        let s2 = t.add_of_switch("s2");
        let s3 = t.add_of_switch("s3");
        t.connect(h1, s1, 1, 1);
        t.connect(s1, s2, 1, 1);
        t.connect(s2, h2, 1, 1);
        t.connect(s1, s3, 1, 1);
        t.connect(s3, s2, 1, 1);
        let direct = t.shortest_path(h1, h2, |_| false).unwrap();
        assert_eq!(direct.len(), 4);
        let detour = t.shortest_path(h1, h2, |n| n == s2);
        assert!(detour.is_none(), "s2 is the only switch adjacent to h2");
        let detour2 = t.shortest_path(h1, h2, |n| n == s3).unwrap();
        assert_eq!(detour2, direct);
    }

    #[test]
    fn disconnected_returns_none() {
        let mut t = Topology::new();
        let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 0, 1));
        let h2 = t.add_host("h2", Ipv4Addr::new(10, 0, 0, 2));
        assert!(t.shortest_path(h1, h2, |_| false).is_none());
        assert_eq!(t.shortest_path(h1, h1, |_| false).unwrap(), vec![h1]);
    }

    #[test]
    fn lab_topology_shape() {
        let t = Topology::lab();
        assert_eq!(t.hosts().count(), 30);
        assert_eq!(t.of_switches().count(), 7);
        // every pair of hosts is mutually reachable and crosses an OF switch
        let s13 = t.node_by_name("S13").unwrap();
        let vm1 = t.node_by_name("VM1").unwrap();
        let path = t.shortest_path(s13, vm1, |_| false).unwrap();
        assert!(path.iter().any(|&n| t.node(n).is_of_switch()));
    }

    #[test]
    fn lab_hosts_resolvable_by_ip_and_name() {
        let t = Topology::lab();
        for i in 1..=25 {
            let id = t.node_by_name(&format!("S{i}")).unwrap();
            let ip = t.host_ip(id);
            assert_eq!(t.host_by_ip(ip), Some(id));
        }
    }

    #[test]
    fn hybrid_lab_has_single_of_switch() {
        let t = Topology::lab_hybrid();
        assert_eq!(t.of_switches().count(), 1);
        assert_eq!(t.hosts().count(), 25);
        // cross-edge paths traverse the OpenFlow core
        let a = t.node_by_name("S1").unwrap();
        let b = t.node_by_name("S2").unwrap();
        let path = t.shortest_path(a, b, |_| false).unwrap();
        assert!(path.iter().any(|&n| t.node(n).is_of_switch()));
    }

    #[test]
    fn tree_topology_counts_match_paper() {
        let t = Topology::tree(16, 20);
        assert_eq!(t.hosts().count(), 320);
        // 16 ToR + 8 agg + 2 core
        assert_eq!(t.of_switches().count(), 26);
        // rack-local path: h - tor - h   (3 nodes)
        let a = t.node_by_name("h1-1").unwrap();
        let b = t.node_by_name("h1-2").unwrap();
        assert_eq!(t.shortest_path(a, b, |_| false).unwrap().len(), 3);
        // cross-group path: h - tor - agg - core - agg - tor - h (7 nodes)
        let c = t.node_by_name("h16-20").unwrap();
        assert_eq!(t.shortest_path(a, c, |_| false).unwrap().len(), 7);
    }

    #[test]
    fn tree_survives_core_failure() {
        let t = Topology::tree(4, 2);
        let core1 = t.node_by_name("core1").unwrap();
        let a = t.node_by_name("h1-1").unwrap();
        let b = t.node_by_name("h4-1").unwrap();
        let path = t.shortest_path(a, b, |n| n == core1).unwrap();
        assert!(!path.contains(&core1));
    }

    #[test]
    #[should_panic(expected = "duplicate host ip")]
    fn duplicate_ip_rejected() {
        let mut t = Topology::new();
        t.add_host("a", Ipv4Addr::new(10, 0, 0, 1));
        t.add_host("b", Ipv4Addr::new(10, 0, 0, 1));
    }

    #[test]
    fn dpid_mapping_roundtrips() {
        let t = Topology::lab();
        for (id, _) in t.of_switches() {
            let dpid = t.dpid_of(id).unwrap();
            assert_eq!(t.node_of_dpid(dpid), Some(id));
        }
        let host = t.node_by_name("S1").unwrap();
        assert!(t.dpid_of(host).is_none());
    }
}
