//! A discrete-event, flow-level data center network simulator with a
//! reactive OpenFlow control plane.
//!
//! This crate stands in for the physical substrate of the FlowDiff paper
//! (ICDCS 2013): the NEC lab testbed, the Amazon EC2 deployment, and the
//! 320-server simulated network of Section V. It simulates hosts,
//! programmable and legacy switches, links with latency/capacity/loss,
//! a shortest-path reactive controller, and produces the controller-side
//! control-traffic log ([`log::ControllerLog`]) that FlowDiff consumes.
//!
//! # Example
//!
//! ```
//! use netsim::prelude::*;
//! use openflow::match_fields::FlowKey;
//!
//! let topo = Topology::lab();
//! let src = topo.host_ip(topo.node_by_name("S1").unwrap());
//! let dst = topo.host_ip(topo.node_by_name("S2").unwrap());
//!
//! let mut sim = Simulation::new(topo, SimConfig::default(), 42);
//! let key = FlowKey::tcp(src, 40_000, dst, 80);
//! sim.schedule_flow(Timestamp::from_secs(1), FlowSpec::new(key, 8_192, 5_000));
//! sim.run_until(Timestamp::from_secs(30));
//!
//! let log = sim.take_log();
//! assert!(log.packet_ins().count() >= 1);
//! ```

pub mod apps;
pub mod config;
pub mod controller;
pub mod engine;
pub mod faults;
pub mod flows;
pub mod log;
pub mod net;
pub mod topology;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::apps::{AppCtx, AppLogic};
    pub use crate::config::SimConfig;
    pub use crate::engine::{SimStats, Simulation};
    pub use crate::faults::{
        ChannelChaos, ChaosReport, ConnChaos, ConnFault, ConnPlan, CrashPlan, Fault,
    };
    pub use crate::flows::{DeliveredFlow, FlowId, FlowPhase, FlowSpec};
    pub use crate::log::{
        ControlEvent, ControllerLog, DecodeError, Direction, FrameDecoder, LogStream,
    };
    pub use crate::net::{
        publish_capture, publish_capture_paced, publish_session, split_capture, ConnState,
        DisconnectCause, EventMerge, IngestServer, LiveIngest, LiveOptions, PublishReport,
        SessionGauge, SessionOptions,
    };
    pub use crate::topology::{LinkId, NodeId, Topology};
    pub use openflow::types::Timestamp;
}
