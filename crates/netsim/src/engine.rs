//! The discrete-event simulation engine.
//!
//! The engine simulates flows (not individual packets): a flow's first
//! packet traverses its path hop by hop, triggering the reactive OpenFlow
//! control loop (`PacketIn` → controller → `FlowMod`) at each switch
//! without a matching entry; the remaining packets are accounted in bulk
//! when the flow completes. Flow entries expire by idle/hard timeout,
//! emitting the `FlowRemoved` notifications that carry per-flow counters.
//!
//! All control messages are captured into a [`ControllerLog`] with
//! controller-side timestamps — the input FlowDiff works from.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use openflow::actions::Action;
use openflow::flow_table::FlowTable;
use openflow::frame;
use openflow::match_fields::OfMatch;
use openflow::messages::{
    FlowMod, OfpMessage, PacketIn, PacketInReason, PortStats, StatsReply, StatsRequest,
};
use openflow::types::{BufferId, PortNo, Timestamp, Xid};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::apps::{AppCtx, AppLogic};
use crate::config::{Deployment, SimConfig};
use crate::controller::ControllerModel;
use crate::faults::{ActiveFaults, Fault};
use crate::flows::{DeliveredFlow, FlowId, FlowPhase, FlowSpec, FlowState};
use crate::log::{ControlEvent, ControllerLog, Direction};
use crate::topology::{LinkId, NodeId, Topology};

/// Aggregate counters of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Flows injected.
    pub flows_started: u64,
    /// Flows whose first packet reached the destination.
    pub flows_delivered: u64,
    /// Flows fully transferred and accounted.
    pub flows_completed: u64,
    /// Flows dropped (failures, unreachable, dead services).
    pub flows_dead: u64,
    /// `PacketIn` messages logged.
    pub packet_ins: u64,
    /// `FlowMod` messages logged.
    pub flow_mods: u64,
    /// `FlowRemoved` messages logged.
    pub flow_removeds: u64,
}

/// Queueing-delay scale, microseconds: with an M/M/1-style
/// `u^2/(1-u)` utilization term this reaches typical shared-buffer
/// depths (tens of ms at 1 Gbps) as utilization approaches 1.
const QUEUE_SCALE_US: f64 = 1_000.0;
/// Upper bound on modeled queueing delay (switch buffer depth),
/// microseconds.
const MAX_QUEUE_US: f64 = 50_000.0;
/// Wire-overhead packets per lost packet (RTO recovery re-sends part of
/// the window, not just the lost segment).
const RETX_AMPLIFICATION: f64 = 4.0;

#[derive(Debug, Clone)]
enum Ev {
    StartFlow(FlowId),
    HopArrive { flow: FlowId, hop: usize },
    CtrlReply { flow: FlowId, hop: usize },
    Complete { flow: FlowId },
    ExpirySweep { node: NodeId },
    ApplyFault(usize),
    EchoTick,
    StatsTick,
}

#[derive(Debug)]
struct Queued {
    at: Timestamp,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct SwitchState {
    table: FlowTable,
    /// Earliest expiry sweep currently queued, to dedupe sweep events.
    sweep_at: Option<Timestamp>,
    /// Cumulative transmitted bytes/packets per egress port.
    port_tx: HashMap<PortNo, (u64, u64)>,
}

/// The simulated data center.
///
/// Construct with a topology, inject workload flows and faults, attach
/// application logic, run to a horizon, and collect the controller log.
pub struct Simulation {
    topo: Topology,
    config: SimConfig,
    rng: StdRng,
    now: Timestamp,
    queue: BinaryHeap<Reverse<Queued>>,
    seq: u64,
    switches: HashMap<NodeId, SwitchState>,
    controller: ControllerModel,
    log: ControllerLog,
    flows: Vec<FlowState>,
    link_rate: Vec<f64>,
    faults: ActiveFaults,
    scheduled_faults: Vec<Fault>,
    apps: Vec<Box<dyn AppLogic>>,
    stats: SimStats,
    next_xid: Xid,
    next_buffer: u32,
}

impl Simulation {
    /// Creates a simulation over `topo` with deterministic randomness
    /// derived from `seed`.
    pub fn new(topo: Topology, config: SimConfig, seed: u64) -> Simulation {
        let table = || match config.flow_table_capacity {
            Some(cap) => FlowTable::with_capacity(cap),
            None => FlowTable::new(),
        };
        let switches = topo
            .node_ids()
            .filter(|&n| topo.node(n).is_of_switch())
            .map(|n| {
                (
                    n,
                    SwitchState {
                        table: table(),
                        sweep_at: None,
                        port_tx: HashMap::new(),
                    },
                )
            })
            .collect();
        let controller = ControllerModel::new(&config);
        let link_rate = vec![0.0; topo.link_count()];
        let mut sim = Simulation {
            topo,
            config,
            rng: StdRng::seed_from_u64(seed),
            now: Timestamp::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            switches,
            controller,
            log: ControllerLog::new(),
            flows: Vec::new(),
            link_rate,
            faults: ActiveFaults::new(),
            scheduled_faults: Vec::new(),
            apps: Vec::new(),
            stats: SimStats::default(),
            next_xid: Xid(1),
            next_buffer: 1,
        };
        if sim.config.echo_interval_s > 0 {
            let first = Timestamp::from_secs(sim.config.echo_interval_s);
            sim.push_event(first, Ev::EchoTick);
        }
        if sim.config.stats_poll_interval_s > 0 {
            let first = Timestamp::from_secs(sim.config.stats_poll_interval_s);
            sim.push_event(first, Ev::StatsTick);
        }
        if sim.config.deployment == Deployment::Proactive {
            // Proactive deployment: a permanent catch-all entry on every
            // switch. Nothing ever misses, so the controller sees no
            // PacketIn/FlowRemoved traffic (Section VI).
            let mut fm = FlowMod::add(OfMatch::any(), 1).action(Action::output(PortNo::NORMAL));
            fm.flags.send_flow_rem = false;
            for state in sim.switches.values_mut() {
                // Invariant: adding one entry to a freshly created table
                // can only fail if its capacity is zero, which SimConfig
                // does not allow.
                state
                    .table
                    .apply(&fm, Timestamp::ZERO)
                    .expect("invariant: an empty flow table accepts one entry");
            }
        }
        sim
    }

    /// The rule the controller installs for a missed flow, per the
    /// configured deployment mode.
    fn installed_rule(
        &self,
        key: &openflow::match_fields::FlowKey,
        in_port: PortNo,
        out_port: PortNo,
    ) -> FlowMod {
        let match_ = match self.config.deployment {
            Deployment::Wildcard { prefix_len } => {
                let masked = mask_ip(key.nw_dst, prefix_len);
                OfMatch::ipv4_dst_prefix(masked, prefix_len)
            }
            _ => OfMatch::exact(key, in_port),
        };
        let mut fm = FlowMod::add(match_, 100)
            .idle_timeout(self.config.idle_timeout_s)
            .hard_timeout(self.config.hard_timeout_s)
            .action(Action::output(out_port));
        fm.flags.send_flow_rem = self.config.notify_flow_removed;
        fm
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Aggregate run statistics.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Read-only view of all flow states (indexed by `FlowId`).
    pub fn flow_states(&self) -> &[FlowState] {
        &self.flows
    }

    /// Attaches application logic that reacts to flow deliveries.
    pub fn add_app(&mut self, logic: Box<dyn AppLogic>) {
        self.apps.push(logic);
    }

    /// Schedules a flow injection at absolute time `at`.
    pub fn schedule_flow(&mut self, at: Timestamp, spec: FlowSpec) -> FlowId {
        let id = FlowId(self.flows.len() as u64);
        self.flows.push(FlowState {
            spec,
            path: Vec::new(),
            started_at: at,
            delivered_at: None,
            completed_at: None,
            wire_bytes: 0,
            wire_packets: 0,
            phase: FlowPhase::InTransit,
        });
        self.push_event(at, Ev::StartFlow(id));
        id
    }

    /// Schedules a fault injection at absolute time `at`.
    pub fn schedule_fault(&mut self, at: Timestamp, fault: Fault) {
        let idx = self.scheduled_faults.len();
        self.scheduled_faults.push(fault);
        self.push_event(at, Ev::ApplyFault(idx));
    }

    /// Runs the event loop until the queue drains or simulated time would
    /// pass `horizon`. Events at exactly `horizon` are processed.
    pub fn run_until(&mut self, horizon: Timestamp) {
        while self.queue.peek().is_some_and(|Reverse(q)| q.at <= horizon) {
            let Some(Reverse(q)) = self.queue.pop() else {
                break;
            };
            debug_assert!(q.at >= self.now, "time must be monotone");
            self.now = q.at;
            self.handle(q.ev);
        }
        if self.now < horizon {
            self.now = horizon;
        }
    }

    /// Finalizes and takes the controller log, leaving an empty one.
    pub fn take_log(&mut self) -> ControllerLog {
        let mut log = std::mem::take(&mut self.log);
        log.finish();
        log
    }

    // ------------------------------------------------------------ internal

    // The accessors below encode structural invariants of the simulation
    // rather than recoverable conditions, so they panic on violation
    // instead of returning errors:
    //
    // * `self.switches` is populated once at construction with every
    //   OpenFlow switch in the topology and never restructured, so for
    //   any node drawn from it (or from a path's switch hops) `dpid` and
    //   `switch_state` cannot miss;
    // * flow paths come from `ControllerModel::route`, which walks
    //   topology links, so consecutive path nodes are always adjacent
    //   and `adj_port`/`adj_link` cannot miss.

    /// The datapath id of an OpenFlow switch node.
    fn dpid(&self, node: NodeId) -> openflow::types::DatapathId {
        self.topo
            .dpid_of(node)
            .expect("invariant: node is an OpenFlow switch")
    }

    /// The per-switch OpenFlow state of `node`.
    fn switch_state(&mut self, node: NodeId) -> &mut SwitchState {
        self.switches
            .get_mut(&node)
            .expect("invariant: every OF switch has state")
    }

    /// The egress port of `node` towards the adjacent `peer`.
    fn adj_port(&self, node: NodeId, peer: NodeId) -> PortNo {
        self.topo
            .port_towards(node, peer)
            .expect("invariant: consecutive path nodes are adjacent")
    }

    /// The link between adjacent path nodes `a` and `b`.
    fn adj_link(&self, a: NodeId, b: NodeId) -> LinkId {
        self.topo
            .link_between(a, b)
            .expect("invariant: consecutive path nodes are adjacent")
    }

    fn push_event(&mut self, at: Timestamp, ev: Ev) {
        self.seq += 1;
        self.queue.push(Reverse(Queued {
            at,
            seq: self.seq,
            ev,
        }));
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::StartFlow(id) => self.on_start(id),
            Ev::HopArrive { flow, hop } => self.on_hop(flow, hop),
            Ev::CtrlReply { flow, hop } => self.on_ctrl_reply(flow, hop),
            Ev::Complete { flow } => self.on_complete(flow),
            Ev::ExpirySweep { node } => self.on_sweep(node),
            Ev::ApplyFault(idx) => {
                let fault = self.scheduled_faults[idx].clone();
                self.faults.apply(&fault);
            }
            Ev::EchoTick => self.on_echo_tick(),
            Ev::StatsTick => self.on_stats_tick(),
        }
    }

    /// Periodic port-statistics poll: the controller requests per-port
    /// counters from every live switch and logs the replies — the raw
    /// material of the link-utilization baseline.
    fn on_stats_tick(&mut self) {
        let mut nodes: Vec<NodeId> = self.switches.keys().copied().collect();
        nodes.sort_unstable();
        for node in nodes {
            if self.faults.is_switch_failed(node) {
                continue;
            }
            let dpid = self.dpid(node);
            let xid = self.next_xid;
            self.next_xid = xid.next();
            self.log.push(ControlEvent {
                ts: self.now,
                dpid,
                direction: Direction::FromController,
                xid,
                msg: OfpMessage::StatsRequest(StatsRequest::Port {
                    port_no: PortNo::NONE,
                }),
            });
            let state = &self.switches[&node];
            let mut ports: Vec<PortStats> = state
                .port_tx
                .iter()
                .map(|(port, (bytes, pkts))| PortStats {
                    port_no: *port,
                    tx_bytes: *bytes,
                    tx_packets: *pkts,
                    ..PortStats::default()
                })
                .collect();
            ports.sort_by_key(|p| p.port_no);
            let arrival = self.now + self.ctrl_latency();
            self.log.push(ControlEvent {
                ts: arrival,
                dpid,
                direction: Direction::ToController,
                xid,
                msg: OfpMessage::StatsReply(StatsReply::Port(ports)),
            });
        }
        let next = self.now + self.config.stats_poll_interval_s * 1_000_000;
        self.push_event(next, Ev::StatsTick);
    }

    /// Periodic keepalive: every live switch's echo reply reaches the
    /// controller, providing the liveness signal FlowDiff's topology
    /// diff uses to distinguish silent switches from failed ones.
    fn on_echo_tick(&mut self) {
        let mut nodes: Vec<NodeId> = self.switches.keys().copied().collect();
        nodes.sort_unstable(); // HashMap order must not leak into the log
        for node in nodes {
            if self.faults.is_switch_failed(node) {
                continue;
            }
            let dpid = self.dpid(node);
            let arrival = self.now + self.ctrl_latency();
            self.log.push(ControlEvent {
                ts: arrival,
                dpid,
                direction: Direction::ToController,
                xid: Xid(0),
                msg: OfpMessage::EchoReply(Vec::new().into()),
            });
        }
        let next = self.now + self.config.echo_interval_s * 1_000_000;
        self.push_event(next, Ev::EchoTick);
    }

    fn ctrl_latency(&mut self) -> u64 {
        let jitter = if self.config.control_jitter_us > 0 {
            self.rng.gen_range(0..=self.config.control_jitter_us)
        } else {
            0
        };
        self.config.control_latency_us + jitter
    }

    /// Current utilization of a link in `[0, 0.99]`.
    fn link_util(&self, link: LinkId) -> f64 {
        let l = self.topo.link(link);
        if l.capacity_bps == 0 {
            return 0.0;
        }
        (self.link_rate[link.0 as usize] / l.capacity_bps as f64).clamp(0.0, 0.99)
    }

    /// Effective one-way latency of a link: propagation plus an M/M/1-
    /// style queueing term that explodes as utilization approaches 1.
    fn link_latency(&self, link: LinkId) -> u64 {
        let util = self.link_util(link);
        let queue_us = (QUEUE_SCALE_US * util * util / (1.0 - util)).min(MAX_QUEUE_US);
        self.topo.link(link).latency_us + queue_us as u64
    }

    /// Drop probability induced by congestion: tail drops appear once a
    /// link runs above 80 % utilization.
    fn congestion_loss(&self, link: LinkId) -> f64 {
        let util = self.link_util(link);
        ((util - 0.8) * 0.5).max(0.0)
    }

    fn add_path_rate(&mut self, id: FlowId, sign: f64) {
        let flow = &self.flows[id.0 as usize];
        let duration_s = (flow.spec.duration_us.max(1_000) as f64) / 1e6;
        let rate = flow.spec.bytes as f64 / duration_s * sign;
        for w in flow.path.windows(2) {
            if let Some(l) = self.topo.link_between(w[0], w[1]) {
                let r = &mut self.link_rate[l.0 as usize];
                *r = (*r + rate).max(0.0);
            }
        }
    }

    fn kill_flow(&mut self, id: FlowId) {
        if !self.flows[id.0 as usize].path.is_empty() {
            self.add_path_rate(id, -1.0);
        }
        let flow = &mut self.flows[id.0 as usize];
        if flow.phase != FlowPhase::Dead {
            flow.phase = FlowPhase::Dead;
            self.stats.flows_dead += 1;
        }
    }

    fn on_start(&mut self, id: FlowId) {
        self.stats.flows_started += 1;
        let key = self.flows[id.0 as usize].spec.key;
        let Some(src) = self.topo.host_by_ip(key.nw_src) else {
            self.kill_flow(id);
            return;
        };
        let Some(dst) = self.topo.host_by_ip(key.nw_dst) else {
            self.kill_flow(id);
            return;
        };
        if self.faults.is_host_down(src) {
            // A dead host originates nothing: the flow silently never
            // appears (no PacketIn anywhere).
            self.kill_flow(id);
            return;
        }
        let faults = &self.faults;
        let Some(path) = self
            .controller
            .route(&self.topo, src, dst, |n| faults.is_switch_failed(n))
        else {
            self.kill_flow(id);
            return;
        };

        // Pre-compute loss effects along the path: injected faults plus
        // congestion tail drops.
        let mut ok_prob = 1.0;
        for w in path.windows(2) {
            if let Some(l) = self.topo.link_between(w[0], w[1]) {
                let p = (self.faults.loss_on(l) + self.congestion_loss(l)).min(1.0);
                ok_prob *= 1.0 - p;
            }
        }
        let p_loss = 1.0 - ok_prob;
        let spec_bytes = self.flows[id.0 as usize].spec.bytes;
        let pkts = self.config.packets_for(spec_bytes);
        // Each loss event costs more than one re-sent segment: RTO-driven
        // recovery re-sends (part of) the congestion window, so the wire
        // overhead amplifies the raw loss rate.
        let p_retx = (p_loss * RETX_AMPLIFICATION).min(0.9);
        let lost = sample_binomial(&mut self.rng, pkts, p_retx);
        let wire_packets = pkts + lost;
        let wire_bytes = spec_bytes + lost * self.config.packet_size.min(spec_bytes.max(64));

        // Request-transfer retransmission delay: a loss anywhere in the
        // (small) request burst stalls delivery by one RTO (bounded
        // exponential backoff).
        let p_request = 1.0 - (1.0 - p_loss).powi(pkts.min(10) as i32);
        let mut head_delay = 0u64;
        let mut rto = self.config.rto_us;
        for _ in 0..5 {
            if self.rng.gen::<f64>() < p_request {
                head_delay += rto;
                rto *= 2;
            } else {
                break;
            }
        }

        {
            let flow = &mut self.flows[id.0 as usize];
            flow.path = path;
            flow.wire_bytes = wire_bytes;
            flow.wire_packets = wire_packets;
        }
        self.add_path_rate(id, 1.0);

        let first_link = {
            let flow = &self.flows[id.0 as usize];
            self.topo.link_between(flow.path[0], flow.path[1])
        };
        let latency = first_link.map_or(0, |l| self.link_latency(l));
        self.push_event(
            self.now + latency + head_delay,
            Ev::HopArrive { flow: id, hop: 1 },
        );
    }

    fn on_hop(&mut self, id: FlowId, hop: usize) {
        if self.flows[id.0 as usize].phase == FlowPhase::Dead {
            return;
        }
        let (node, key, last_hop) = {
            let flow = &self.flows[id.0 as usize];
            (flow.path[hop], flow.spec.key, hop == flow.path.len() - 1)
        };
        if last_hop {
            self.on_delivery(id, node);
            return;
        }
        // A switch hop.
        if self.faults.is_switch_failed(node) {
            self.kill_flow(id);
            return;
        }
        let in_port = {
            let prev = self.flows[id.0 as usize].path[hop - 1];
            self.adj_port(node, prev)
        };
        let is_of = self.topo.node(node).is_of_switch();
        if is_of {
            let (now, packet_size) = (self.now, self.config.packet_size);
            let hit = self
                .switch_state(node)
                .table
                .match_packet(&key, in_port, packet_size, now)
                .is_some();
            if !hit {
                self.send_packet_in(id, hop, node, in_port);
                return;
            }
        }
        self.forward(id, hop);
    }

    /// Schedules the first packet onward from `path[hop]` to `path[hop+1]`.
    fn forward(&mut self, id: FlowId, hop: usize) {
        let (node, next) = {
            let flow = &self.flows[id.0 as usize];
            (flow.path[hop], flow.path[hop + 1])
        };
        let link = self.adj_link(node, next);
        let latency = self.config.switch_proc_us + self.link_latency(link);
        self.push_event(
            self.now + latency,
            Ev::HopArrive {
                flow: id,
                hop: hop + 1,
            },
        );
    }

    fn send_packet_in(&mut self, id: FlowId, hop: usize, node: NodeId, in_port: PortNo) {
        let dpid = self.dpid(node);
        let key = self.flows[id.0 as usize].spec.key;
        let xid = self.next_xid;
        self.next_xid = xid.next();
        let buffer_id = BufferId(self.next_buffer);
        self.next_buffer = self.next_buffer.wrapping_add(1).max(1);

        let capture = frame::build_frame(&key, self.config.miss_send_len as usize);
        let arrival = self.now + self.ctrl_latency();
        self.log.push(ControlEvent {
            ts: arrival,
            dpid,
            direction: Direction::ToController,
            xid,
            msg: OfpMessage::PacketIn(PacketIn {
                buffer_id,
                total_len: self.config.packet_size as u16,
                in_port,
                reason: PacketInReason::NoMatch,
                data: capture,
            }),
        });
        self.stats.packet_ins += 1;

        if self.faults.is_controller_down() {
            // Nobody answers: the buffered packet ages out on the switch
            // and the flow dies. The PacketIn stays in the capture (a
            // passive tap still sees it) — FlowDiff's controller-failure
            // evidence.
            self.kill_flow(id);
            return;
        }

        // Controller processing, possibly degraded by an overload fault.
        self.controller.degradation = self.faults.controller_factor();
        let response = self.controller.response_delay(arrival, &mut self.rng);
        let send_time = arrival + response;

        // The FlowMod the controller sends back (logged at send time).
        let out_port = {
            let next = self.flows[id.0 as usize].path[hop + 1];
            self.adj_port(node, next)
        };
        let mut fm = self.installed_rule(&key, in_port, out_port);
        fm.buffer_id = buffer_id;
        self.log.push(ControlEvent {
            ts: send_time,
            dpid,
            direction: Direction::FromController,
            xid,
            msg: OfpMessage::FlowMod(fm),
        });
        self.stats.flow_mods += 1;

        let back = self.ctrl_latency();
        self.push_event(send_time + back, Ev::CtrlReply { flow: id, hop });
    }

    fn on_ctrl_reply(&mut self, id: FlowId, hop: usize) {
        if self.flows[id.0 as usize].phase == FlowPhase::Dead {
            return;
        }
        let (node, key) = {
            let flow = &self.flows[id.0 as usize];
            (flow.path[hop], flow.spec.key)
        };
        if self.faults.is_switch_failed(node) {
            self.kill_flow(id);
            return;
        }
        let (in_port, out_port) = {
            let flow = &self.flows[id.0 as usize];
            let prev = flow.path[hop - 1];
            let next = flow.path[hop + 1];
            (self.adj_port(node, prev), self.adj_port(node, next))
        };
        let fm = self.installed_rule(&key, in_port, out_port);
        let (now, packet_size) = (self.now, self.config.packet_size);
        let state = self.switch_state(node);
        match state.table.apply(&fm, now) {
            Ok(_) => {
                // The buffered first packet is released through the new
                // entry.
                state.table.match_packet(&key, in_port, packet_size, now);
                self.schedule_sweep(node);
            }
            Err(openflow::error::FlowTableError::TableFull { .. }) => {
                // The switch reports the failed add; the packet is still
                // released (packet-out semantics) but runs ruleless, so
                // the next flow misses again.
                let dpid = self.dpid(node);
                let arrival = self.now + self.ctrl_latency();
                self.log.push(ControlEvent {
                    ts: arrival,
                    dpid,
                    direction: Direction::ToController,
                    xid: Xid(0),
                    msg: OfpMessage::Error(openflow::messages::ErrorMsg::table_full()),
                });
            }
            Err(e) => panic!("unexpected flow table error: {e}"),
        }
        self.forward(id, hop);
    }

    fn on_delivery(&mut self, id: FlowId, dst: NodeId) {
        let key = self.flows[id.0 as usize].spec.key;
        let service_dead =
            self.faults.is_host_down(dst) || self.faults.is_service_dead(dst, key.tp_dst);
        if service_dead {
            // The connection attempt dies at the host: a handful of SYN
            // retransmissions cross the wire, then the client gives up.
            // No application processing happens.
            {
                let flow = &mut self.flows[id.0 as usize];
                flow.wire_bytes = 66 * 3;
                flow.wire_packets = 3;
            }
            let give_up = self.config.rto_us * 3;
            self.push_event(self.now + give_up, Ev::Complete { flow: id });
            return;
        }

        self.stats.flows_delivered += 1;
        let delivered = {
            let flow = &mut self.flows[id.0 as usize];
            flow.delivered_at = Some(self.now);
            flow.phase = FlowPhase::Delivered;
            DeliveredFlow {
                id,
                spec: flow.spec.clone(),
                // path[0] is the source host `on_start` already resolved.
                src: flow.path[0],
                dst,
                started_at: flow.started_at,
                delivered_at: self.now,
            }
        };

        // Invoke application logic; it may schedule dependent flows.
        let mut apps = std::mem::take(&mut self.apps);
        let mut ctx = AppCtx {
            now: self.now,
            rng: &mut self.rng,
            topo: &self.topo,
            host_slowdown_us: self.faults.slowdown_of(dst),
            queued: Vec::new(),
        };
        for app in &mut apps {
            app.on_flow_delivered(&delivered, &mut ctx);
        }
        let queued = ctx.queued;
        self.apps = apps;
        for (at, spec) in queued {
            self.schedule_flow(at.max(self.now), spec);
        }

        // Payload transfer: completion after the spec duration, stretched
        // by retransmissions.
        let loss_tail = {
            let flow = &self.flows[id.0 as usize];
            let lost = flow.wire_packets - self.config.packets_for(flow.spec.bytes);
            lost * (self.config.rto_us / 8)
        };
        let duration = self.flows[id.0 as usize].spec.duration_us;
        self.push_event(self.now + duration + loss_tail, Ev::Complete { flow: id });
    }

    fn on_complete(&mut self, id: FlowId) {
        if self.flows[id.0 as usize].phase == FlowPhase::Dead {
            return;
        }
        self.add_path_rate(id, -1.0);
        let (key, path, wire_bytes, wire_packets) = {
            let flow = &mut self.flows[id.0 as usize];
            flow.phase = FlowPhase::Completed;
            flow.completed_at = Some(self.now);
            (
                flow.spec.key,
                flow.path.clone(),
                flow.wire_bytes,
                flow.wire_packets,
            )
        };
        self.stats.flows_completed += 1;

        // Credit the full transfer to each on-path entry. The first
        // packet was already counted on installation.
        let extra_pkts = wire_packets.saturating_sub(1);
        let extra_bytes = wire_bytes.saturating_sub(self.config.packet_size.min(wire_bytes));
        for (i, w) in path.windows(2).enumerate() {
            let node = w[1];
            if i + 2 > path.len() - 1 {
                break; // reached the destination host
            }
            if !self.topo.node(node).is_of_switch() {
                continue;
            }
            let in_port = self.adj_port(node, w[0]);
            let out_port = self.adj_port(node, path[i + 2]);
            if let Some(state) = self.switches.get_mut(&node) {
                state
                    .table
                    .account(&key, in_port, extra_pkts, extra_bytes, self.now);
                let tx = state.port_tx.entry(out_port).or_insert((0, 0));
                tx.0 += wire_bytes;
                tx.1 += wire_packets;
            }
            self.schedule_sweep(node);
        }
    }

    fn schedule_sweep(&mut self, node: NodeId) {
        let now = self.now;
        let state = self.switch_state(node);
        let Some(deadline) = state.table.next_deadline() else {
            return;
        };
        let due = deadline.max(now);
        if state.sweep_at.is_none_or(|t| due < t) {
            state.sweep_at = Some(due);
            self.push_event(due, Ev::ExpirySweep { node });
        }
    }

    fn on_sweep(&mut self, node: NodeId) {
        let dpid = self.dpid(node);
        let now = self.now;
        let state = self.switch_state(node);
        state.sweep_at = None;
        let removed = state.table.expire(now);
        for fr in removed {
            let arrival = self.now + self.ctrl_latency();
            self.log.push(ControlEvent {
                ts: arrival,
                dpid,
                direction: Direction::ToController,
                xid: Xid(0),
                msg: OfpMessage::FlowRemoved(fr),
            });
            self.stats.flow_removeds += 1;
        }
        self.schedule_sweep(node);
    }
}

/// Zeroes the host bits of `ip` below the prefix length.
fn mask_ip(ip: std::net::Ipv4Addr, prefix_len: u32) -> std::net::Ipv4Addr {
    if prefix_len >= 32 {
        return ip;
    }
    let mask = if prefix_len == 0 {
        0
    } else {
        u32::MAX << (32 - prefix_len)
    };
    std::net::Ipv4Addr::from(u32::from(ip) & mask)
}

/// Draws from Binomial(n, p) — exact Bernoulli loop for small n, normal
/// approximation for large n.
fn sample_binomial(rng: &mut StdRng, n: u64, p: f64) -> u64 {
    if p <= 0.0 || n == 0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if n <= 64 {
        (0..n).filter(|_| rng.gen::<f64>() < p).count() as u64
    } else {
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        // Box-Muller
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + sd * z).round().clamp(0.0, n as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::match_fields::FlowKey;
    use std::net::Ipv4Addr;

    fn two_host_line() -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 0, 1));
        let h2 = t.add_host("h2", Ipv4Addr::new(10, 0, 0, 2));
        let s1 = t.add_of_switch("s1");
        let s2 = t.add_of_switch("s2");
        t.connect(h1, s1, 50, 1_000_000_000);
        t.connect(s1, s2, 20, 1_000_000_000);
        t.connect(s2, h2, 50, 1_000_000_000);
        (t, h1, h2)
    }

    fn flow_1_to_2(sport: u16) -> FlowSpec {
        FlowSpec::new(
            FlowKey::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                sport,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            ),
            15_000,
            10_000,
        )
    }

    fn run_one(sim: &mut Simulation) -> ControllerLog {
        sim.run_until(Timestamp::from_secs(60));
        sim.take_log()
    }

    #[test]
    fn single_flow_produces_packetin_flowmod_per_switch_and_flowremoved() {
        let (t, _, _) = two_host_line();
        let mut sim = Simulation::new(t, SimConfig::default(), 1);
        sim.schedule_flow(Timestamp::from_secs(1), flow_1_to_2(4000));
        let log = run_one(&mut sim);
        assert_eq!(log.packet_ins().count(), 2, "one miss per OF switch");
        assert_eq!(log.flow_mods().count(), 2);
        assert_eq!(log.flow_removeds().count(), 2);
        let stats = sim.stats();
        assert_eq!(stats.flows_started, 1);
        assert_eq!(stats.flows_delivered, 1);
        assert_eq!(stats.flows_completed, 1);
        assert_eq!(stats.flows_dead, 0);
    }

    #[test]
    fn flow_removed_counters_match_wire_bytes() {
        let (t, _, _) = two_host_line();
        let mut sim = Simulation::new(t, SimConfig::default(), 1);
        sim.schedule_flow(Timestamp::from_secs(1), flow_1_to_2(4000));
        let log = run_one(&mut sim);
        for (_, _, fr) in log.flow_removeds() {
            assert_eq!(fr.byte_count, 15_000);
            assert_eq!(fr.packet_count, 10);
        }
    }

    #[test]
    fn packetin_order_follows_path() {
        let (t, _, _) = two_host_line();
        let mut sim = Simulation::new(t.clone(), SimConfig::default(), 1);
        sim.schedule_flow(Timestamp::from_secs(1), flow_1_to_2(4000));
        let log = run_one(&mut sim);
        let pis: Vec<_> = log.packet_ins().collect();
        assert_eq!(pis.len(), 2);
        let s1 = t.dpid_of(t.node_by_name("s1").unwrap()).unwrap();
        let s2 = t.dpid_of(t.node_by_name("s2").unwrap()).unwrap();
        assert_eq!(pis[0].1, s1);
        assert_eq!(pis[1].1, s2);
        assert!(pis[0].0 < pis[1].0);
    }

    #[test]
    fn second_flow_same_key_within_timeout_hits_table() {
        let (t, _, _) = two_host_line();
        let mut sim = Simulation::new(t, SimConfig::default(), 1);
        sim.schedule_flow(Timestamp::from_secs(1), flow_1_to_2(4000));
        // Same 5-tuple again, 2 seconds later (< 5 s idle timeout since
        // completion refreshes the entry).
        sim.schedule_flow(Timestamp::from_secs(3), flow_1_to_2(4000));
        let log = run_one(&mut sim);
        assert_eq!(
            log.packet_ins().count(),
            2,
            "second flow must not miss: entries still installed"
        );
    }

    #[test]
    fn distinct_flows_each_trigger_control_traffic() {
        let (t, _, _) = two_host_line();
        let mut sim = Simulation::new(t, SimConfig::default(), 1);
        for i in 0..5 {
            sim.schedule_flow(Timestamp::from_secs(1 + i), flow_1_to_2(4000 + i as u16));
        }
        let log = run_one(&mut sim);
        assert_eq!(log.packet_ins().count(), 10);
        assert_eq!(log.flow_removeds().count(), 10);
    }

    #[test]
    fn host_down_produces_no_traffic_from_host() {
        let (t, h1, _) = two_host_line();
        let mut sim = Simulation::new(t, SimConfig::default(), 1);
        sim.schedule_fault(Timestamp::ZERO, Fault::HostDown { host: h1 });
        sim.schedule_flow(Timestamp::from_secs(1), flow_1_to_2(4000));
        let log = run_one(&mut sim);
        assert_eq!(log.packet_ins().count(), 0);
        assert_eq!(sim.stats().flows_dead, 1);
    }

    #[test]
    fn dead_service_still_triggers_packetins_but_no_delivery() {
        let (t, _, h2) = two_host_line();
        let mut sim = Simulation::new(t, SimConfig::default(), 1);
        sim.schedule_fault(Timestamp::ZERO, Fault::PortBlock { host: h2, port: 80 });
        sim.schedule_flow(Timestamp::from_secs(1), flow_1_to_2(4000));
        let log = run_one(&mut sim);
        assert_eq!(log.packet_ins().count(), 2, "request still crosses fabric");
        assert_eq!(sim.stats().flows_delivered, 0);
        // The tiny SYN-retry footprint is what the counters record (the
        // installed first packet is quantized at one packet_size).
        let max_bytes = log.flow_removeds().map(|(_, _, fr)| fr.byte_count).max();
        assert!(max_bytes.unwrap() <= 1_500 + 200);
    }

    #[test]
    fn switch_failure_reroutes_subsequent_flows() {
        // diamond: h1 - s1 - {s2|s3} - s4 - h2
        let mut t = Topology::new();
        let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 0, 1));
        let h2 = t.add_host("h2", Ipv4Addr::new(10, 0, 0, 2));
        let s1 = t.add_of_switch("s1");
        let s2 = t.add_of_switch("s2");
        let s3 = t.add_of_switch("s3");
        let s4 = t.add_of_switch("s4");
        t.connect(h1, s1, 10, 1_000_000_000);
        t.connect(s1, s2, 10, 1_000_000_000);
        t.connect(s1, s3, 10, 1_000_000_000);
        t.connect(s2, s4, 10, 1_000_000_000);
        t.connect(s3, s4, 10, 1_000_000_000);
        t.connect(s4, h2, 10, 1_000_000_000);
        let s2_dpid = t.dpid_of(s2).unwrap();
        let s3_dpid = t.dpid_of(s3).unwrap();

        let mut sim = Simulation::new(t, SimConfig::default(), 1);
        sim.schedule_flow(Timestamp::from_secs(1), flow_1_to_2(4000));
        sim.schedule_fault(
            Timestamp::from_secs(10),
            Fault::SwitchFailure { switch: s2 },
        );
        sim.schedule_flow(Timestamp::from_secs(11), flow_1_to_2(4001));
        let log = run_one(&mut sim);

        let early: Vec<_> = log
            .packet_ins()
            .filter(|(ts, ..)| *ts < Timestamp::from_secs(10))
            .map(|(_, d, ..)| d)
            .collect();
        let late: Vec<_> = log
            .packet_ins()
            .filter(|(ts, ..)| *ts > Timestamp::from_secs(10))
            .map(|(_, d, ..)| d)
            .collect();
        assert!(early.contains(&s2_dpid) ^ early.contains(&s3_dpid));
        assert!(late.contains(&s3_dpid));
        assert!(!late.contains(&s2_dpid));
    }

    #[test]
    fn link_loss_inflates_bytes_and_delays() {
        let (t, _, _) = two_host_line();
        let link = t
            .link_between(t.node_by_name("s1").unwrap(), t.node_by_name("s2").unwrap())
            .unwrap();

        // Baseline.
        let mut clean = Simulation::new(t.clone(), SimConfig::default(), 42);
        clean.schedule_flow(Timestamp::from_secs(1), flow_1_to_2(4000));
        let clean_log = run_one(&mut clean);
        let clean_bytes: u64 = clean_log
            .flow_removeds()
            .map(|(_, _, fr)| fr.byte_count)
            .max()
            .unwrap();

        // Lossy: average over several flows so the binomial draw cannot
        // be zero for all of them.
        let mut lossy = Simulation::new(t, SimConfig::default(), 42);
        lossy.schedule_fault(Timestamp::ZERO, Fault::LinkLoss { link, rate: 0.3 });
        for i in 0..10 {
            lossy.schedule_flow(
                Timestamp::from_secs(1 + i * 2),
                flow_1_to_2(4000 + i as u16),
            );
        }
        lossy.run_until(Timestamp::from_secs(120));
        let lossy_log = lossy.take_log();
        let lossy_total: u64 = lossy_log
            .flow_removeds()
            .map(|(_, _, fr)| fr.byte_count)
            .sum();
        let lossy_count = lossy_log.flow_removeds().count() as u64;
        assert!(
            lossy_total / lossy_count > clean_bytes,
            "retransmissions must inflate byte counts: {lossy_total}/{lossy_count} vs {clean_bytes}"
        );
    }

    #[test]
    fn controller_overload_raises_response_time() {
        let (t, _, _) = two_host_line();
        let mut sim = Simulation::new(t, SimConfig::default(), 3);
        sim.schedule_flow(Timestamp::from_secs(1), flow_1_to_2(4000));
        sim.schedule_fault(
            Timestamp::from_secs(5),
            Fault::ControllerOverload { factor: 50.0 },
        );
        sim.schedule_flow(Timestamp::from_secs(10), flow_1_to_2(4001));
        let log = run_one(&mut sim);

        // Pair PacketIn -> FlowMod by xid, compare response times.
        let mut crt = Vec::new();
        for (ts_pi, _, xid, _) in log.packet_ins() {
            if let Some((ts_fm, _, _, _)) = log.flow_mods().find(|(_, _, x, _)| *x == xid) {
                crt.push((ts_pi, ts_fm - ts_pi));
            }
        }
        let early: Vec<u64> = crt
            .iter()
            .filter(|(ts, _)| *ts < Timestamp::from_secs(5))
            .map(|(_, d)| *d)
            .collect();
        let late: Vec<u64> = crt
            .iter()
            .filter(|(ts, _)| *ts > Timestamp::from_secs(5))
            .map(|(_, d)| *d)
            .collect();
        assert!(!early.is_empty() && !late.is_empty());
        let avg = |v: &[u64]| v.iter().sum::<u64>() / v.len() as u64;
        assert!(avg(&late) > avg(&early) * 10);
    }

    #[test]
    fn app_logic_schedules_dependent_flow() {
        struct Relay;
        impl AppLogic for Relay {
            fn on_flow_delivered(&mut self, flow: &DeliveredFlow, ctx: &mut AppCtx<'_>) {
                // h2 relays every request on port 80 back to h1:9000.
                if flow.spec.key.tp_dst == 80 {
                    let key =
                        FlowKey::tcp(flow.spec.key.nw_dst, 30_000, flow.spec.key.nw_src, 9000);
                    ctx.schedule_flow_after(60_000, FlowSpec::new(key, 2_000, 5_000));
                }
            }
        }
        let (t, _, _) = two_host_line();
        let mut sim = Simulation::new(t, SimConfig::default(), 5);
        sim.add_app(Box::new(Relay));
        sim.schedule_flow(Timestamp::from_secs(1), flow_1_to_2(4000));
        let log = run_one(&mut sim);
        assert_eq!(sim.stats().flows_delivered, 2);
        // 2 flows x 2 switches
        assert_eq!(log.packet_ins().count(), 4);
        // The dependent flow appears ~60 ms after the first delivery.
        let pis: Vec<_> = log.packet_ins().map(|(ts, ..)| ts).collect();
        let gap = pis[2] - pis[1];
        assert!(
            (55_000..110_000).contains(&gap),
            "dependent flow should lag by ~60ms, got {gap}us"
        );
    }

    #[test]
    fn host_slowdown_stretches_dependent_delay() {
        struct Relay;
        impl AppLogic for Relay {
            fn on_flow_delivered(&mut self, flow: &DeliveredFlow, ctx: &mut AppCtx<'_>) {
                if flow.spec.key.tp_dst == 80 {
                    let key =
                        FlowKey::tcp(flow.spec.key.nw_dst, 30_000, flow.spec.key.nw_src, 9000);
                    ctx.schedule_flow_after(60_000, FlowSpec::new(key, 2_000, 5_000));
                }
            }
        }
        let (t, _, h2) = two_host_line();
        let mut sim = Simulation::new(t, SimConfig::default(), 5);
        sim.add_app(Box::new(Relay));
        sim.schedule_fault(
            Timestamp::ZERO,
            Fault::HostSlowdown {
                host: h2,
                extra_us: 100_000,
            },
        );
        sim.schedule_flow(Timestamp::from_secs(1), flow_1_to_2(4000));
        let log = run_one(&mut sim);
        let pis: Vec<_> = log.packet_ins().map(|(ts, ..)| ts).collect();
        let gap = pis[2] - pis[1];
        assert!(gap > 155_000, "slowdown must add 100ms, got {gap}us");
    }

    #[test]
    fn determinism_same_seed_same_log() {
        let build = || {
            let (t, _, _) = two_host_line();
            let mut sim = Simulation::new(t, SimConfig::default(), 77);
            for i in 0..20 {
                sim.schedule_flow(
                    Timestamp::from_millis(500 * (i + 1)),
                    flow_1_to_2(5000 + i as u16),
                );
            }
            run_one(&mut sim)
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_timings() {
        let build = |seed| {
            let (t, _, _) = two_host_line();
            let mut sim = Simulation::new(t, SimConfig::default(), seed);
            sim.schedule_flow(Timestamp::from_secs(1), flow_1_to_2(5000));
            run_one(&mut sim)
        };
        let a = build(1);
        let b = build(2);
        assert_ne!(
            a.events().first().map(|e| e.ts),
            b.events().first().map(|e| e.ts)
        );
    }

    #[test]
    fn proactive_mode_silences_control_plane() {
        let (t, _, _) = two_host_line();
        let config = SimConfig {
            deployment: crate::config::Deployment::Proactive,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(t, config, 1);
        for i in 0..5 {
            sim.schedule_flow(Timestamp::from_secs(1 + i), flow_1_to_2(4000 + i as u16));
        }
        let log = run_one(&mut sim);
        assert_eq!(log.packet_ins().count(), 0, "no misses when proactive");
        assert_eq!(log.flow_removeds().count(), 0);
        assert_eq!(sim.stats().flows_delivered, 5, "forwarding still works");
        // liveness keepalives remain
        assert!(log
            .events()
            .iter()
            .any(|e| matches!(e.msg, OfpMessage::EchoReply(_))));
    }

    #[test]
    fn wildcard_mode_reduces_packet_ins() {
        let (t, _, _) = two_host_line();
        let count_for = |deployment| {
            let (t2, _, _) = two_host_line();
            let _ = &t;
            let config = SimConfig {
                deployment,
                ..SimConfig::default()
            };
            let mut sim = Simulation::new(t2, config, 1);
            // ten concurrent flows to the same destination host
            for i in 0..10 {
                sim.schedule_flow(
                    Timestamp::from_millis(1_000 + i * 100),
                    flow_1_to_2(4000 + i as u16),
                );
            }
            sim.run_until(Timestamp::from_secs(60));
            (
                sim.take_log().packet_ins().count(),
                sim.stats().flows_delivered,
            )
        };
        let (reactive, d1) = count_for(crate::config::Deployment::Reactive);
        let (wildcard, d2) = count_for(crate::config::Deployment::Wildcard { prefix_len: 24 });
        assert_eq!(d1, 10);
        assert_eq!(d2, 10);
        assert_eq!(reactive, 20, "one miss per flow per switch");
        assert_eq!(
            wildcard, 2,
            "only the first flow misses; the /24 rule covers the rest"
        );
    }

    #[test]
    fn wildcard_flow_removed_aggregates_counters() {
        let (t, _, _) = two_host_line();
        let config = SimConfig {
            deployment: crate::config::Deployment::Wildcard { prefix_len: 24 },
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(t, config, 1);
        for i in 0..5 {
            sim.schedule_flow(
                Timestamp::from_millis(1_000 + i * 100),
                flow_1_to_2(4000 + i as u16),
            );
        }
        let log = run_one(&mut sim);
        // one aggregated removal per switch carrying all five flows
        let totals: Vec<u64> = log
            .flow_removeds()
            .map(|(_, _, fr)| fr.byte_count)
            .collect();
        assert_eq!(totals.len(), 2);
        assert!(totals.iter().all(|&b| b == 5 * 15_000));
    }

    #[test]
    fn stats_polling_reports_growing_counters() {
        let (t, _, _) = two_host_line();
        let mut sim = Simulation::new(t, SimConfig::default(), 1);
        for i in 0..6 {
            sim.schedule_flow(
                Timestamp::from_secs(2 + i * 5),
                flow_1_to_2(4000 + i as u16),
            );
        }
        sim.run_until(Timestamp::from_secs(40));
        let log = sim.take_log();
        // polls every 10 s: requests and replies both present
        let mut replies = Vec::new();
        for ev in log.events() {
            if let OfpMessage::StatsReply(openflow::messages::StatsReply::Port(ports)) = &ev.msg {
                replies.push((ev.ts, ev.dpid, ports.clone()));
            }
        }
        assert!(
            replies.len() >= 6,
            "two switches x >=3 polls: {}",
            replies.len()
        );
        // counters are cumulative per (switch, port): never decreasing
        use std::collections::HashMap;
        let mut last: HashMap<(openflow::types::DatapathId, PortNo), u64> = HashMap::new();
        let mut grew = false;
        for (_, dpid, ports) in &replies {
            for p in ports {
                let prev = last.insert((*dpid, p.port_no), p.tx_bytes);
                if let Some(prev) = prev {
                    assert!(p.tx_bytes >= prev, "counters must be cumulative");
                    grew |= p.tx_bytes > prev;
                }
            }
        }
        assert!(grew, "traffic must show up in the counters");
    }

    #[test]
    fn controller_down_leaves_packet_ins_unanswered() {
        let (t, _, _) = two_host_line();
        let mut sim = Simulation::new(t, SimConfig::default(), 1);
        sim.schedule_flow(Timestamp::from_secs(1), flow_1_to_2(4000));
        sim.schedule_fault(Timestamp::from_secs(5), Fault::ControllerDown);
        sim.schedule_flow(Timestamp::from_secs(10), flow_1_to_2(4001));
        let log = run_one(&mut sim);
        // first flow: 2 PacketIns answered; second: 1 PacketIn (dies at
        // the first switch), no reply
        assert_eq!(log.packet_ins().count(), 3);
        assert_eq!(log.flow_mods().count(), 2);
        assert_eq!(sim.stats().flows_dead, 1);
        assert_eq!(sim.stats().flows_delivered, 1);
    }

    #[test]
    fn full_flow_table_reports_errors_and_keeps_missing() {
        let (t, _, _) = two_host_line();
        let config = SimConfig {
            flow_table_capacity: Some(2),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(t, config, 1);
        // eight concurrent flows: capacity 2 per switch overflows
        for i in 0..8 {
            sim.schedule_flow(
                Timestamp::from_millis(1_000 + i * 20),
                flow_1_to_2(4000 + i as u16),
            );
        }
        let log = run_one(&mut sim);
        let errors = log
            .events()
            .iter()
            .filter(|e| matches!(&e.msg, OfpMessage::Error(err) if err.is_table_full()))
            .count();
        assert!(errors > 0, "overflow must be reported");
        // forwarding survives regardless
        assert_eq!(sim.stats().flows_delivered, 8);
        // and only as many FlowRemoved as entries that actually existed
        assert!(log.flow_removeds().count() <= 4);
    }

    #[test]
    fn stats_polling_disabled_when_interval_zero() {
        let (t, _, _) = two_host_line();
        let config = SimConfig {
            stats_poll_interval_s: 0,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(t, config, 1);
        sim.schedule_flow(Timestamp::from_secs(1), flow_1_to_2(4000));
        let log = run_one(&mut sim);
        assert!(!log
            .events()
            .iter()
            .any(|e| matches!(e.msg, OfpMessage::StatsReply(_))));
    }

    #[test]
    fn binomial_sampler_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_binomial(&mut rng, 100, 0.0), 0);
        assert_eq!(sample_binomial(&mut rng, 100, 1.0), 100);
        for _ in 0..100 {
            let s = sample_binomial(&mut rng, 1000, 0.01);
            assert!(s <= 1000);
        }
        // expectation sanity: mean of many draws near n*p
        let draws: Vec<u64> = (0..500)
            .map(|_| sample_binomial(&mut rng, 10_000, 0.01))
            .collect();
        let mean = draws.iter().sum::<u64>() as f64 / draws.len() as f64;
        assert!((80.0..120.0).contains(&mean), "mean {mean} far from 100");
    }

    #[test]
    fn congestion_increases_latency() {
        let (t, _, _) = two_host_line();
        // Baseline gap between the two PacketIns of one flow.
        let measure = |bg: bool| {
            let (t2, _, _) = two_host_line();
            let _ = &t;
            let mut sim = Simulation::new(t2, SimConfig::default(), 9);
            if bg {
                // Saturating background flow over the same path.
                let key = FlowKey::udp(
                    Ipv4Addr::new(10, 0, 0, 1),
                    9999,
                    Ipv4Addr::new(10, 0, 0, 2),
                    5001,
                );
                sim.schedule_flow(
                    Timestamp::from_millis(500),
                    FlowSpec::new(key, 50_000_000_000, 60_000_000),
                );
            }
            sim.schedule_flow(Timestamp::from_secs(2), flow_1_to_2(4000));
            let log = run_one(&mut sim);
            let pis: Vec<_> = log
                .packet_ins()
                .filter(|(ts, ..)| *ts > Timestamp::from_secs(1))
                .map(|(ts, ..)| ts)
                .collect();
            pis[1] - pis[0]
        };
        let quiet = measure(false);
        let busy = measure(true);
        assert!(
            busy > quiet,
            "background traffic must slow the fabric: {busy} <= {quiet}"
        );
    }
}
