//! Live TCP ingest: the wire between control-log publishers and a
//! FlowDiff diagnosis process.
//!
//! The transport reuses the `.fcap` capture format verbatim — each
//! connection is one capture stream: the 8-byte `FDIFFCAP` magic as the
//! handshake, then [`encode_event`](crate::log::encode_event) frames.
//! A publisher is therefore trivial (write the capture bytes), and the
//! server-side decode path is *the same decoder* the file path uses:
//! every per-connection byte stream runs through a
//! [`FrameDecoder`], so resynchronization,
//! typed [`DecodeError`]s, and exact [`StreamStats`] accounting carry
//! over from batch mode unchanged.
//!
//! Flow control is end-to-end and allocation-free: each connection's
//! reader thread pushes decoded events into a **bounded** channel, so a
//! slow consumer blocks the reader, the kernel socket buffers fill, and
//! TCP pushes back on the publisher — memory on the ingest side stays
//! bounded by `connections × (queue capacity + one frame + one read
//! chunk)` no matter how far ahead the publishers are.
//!
//! Cross-stream ordering is handled by [`EventMerge`], a blocking
//! k-way merge by `(timestamp, connection index)`. For publishers
//! created by [`split_capture`] (which confines every equal-timestamp
//! run to a single stream) the merged sequence is *exactly* the
//! original capture's event order, which is what makes served epoch
//! snapshots byte-identical to the file-based run. Real skewed
//! publishers lean on the downstream `reorder_slack_us` buffer instead,
//! just like a disordered capture file.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

use crate::faults::{ChannelChaos, ChaosReport};
use crate::log::{ControlEvent, ControllerLog, DecodeError, FrameDecoder, StreamStats};

/// Read-chunk size for connection reader threads: large enough to
/// amortize syscalls, small enough that backpressure stays tight.
const READ_CHUNK: usize = 16 * 1024;

/// Write-chunk size for [`publish_capture`]: deliberately not a
/// multiple of any frame size, so served streams always exercise the
/// incremental decoder's mid-frame resume path.
const WRITE_CHUNK: usize = 8_192 - 7;

/// How many leading decode errors a [`ConnReport`] retains verbatim
/// (every error is still *counted* in the stats).
const KEPT_ERRORS: usize = 8;

/// What one publisher connection delivered, reported by its reader
/// thread when the connection closes.
#[derive(Debug)]
pub struct ConnReport {
    /// Connection index in accept order (also the merge tie-breaker).
    pub index: usize,
    /// The publisher's remote address.
    pub peer: SocketAddr,
    /// True when the stream opened with the `FDIFFCAP` magic.
    pub handshake_ok: bool,
    /// Raw bytes read off the socket, magic included.
    pub bytes_read: u64,
    /// Events decoded and forwarded to the merge.
    pub events: u64,
    /// Frame-level decode/skip counters — exactly what a batch
    /// [`LogStream`](crate::log::LogStream) over the same bytes reports.
    pub stats: StreamStats,
    /// The first `KEPT_ERRORS` decode errors, for operator logs.
    pub first_errors: Vec<DecodeError>,
}

/// One accepted publisher connection: a bounded event queue fed by a
/// reader thread.
struct Conn {
    rx: Receiver<ControlEvent>,
    reader: JoinHandle<ConnReport>,
}

/// A blocking TCP ingest server for `.fcap`-framed control-log streams.
pub struct IngestServer {
    listener: TcpListener,
}

impl IngestServer {
    /// Binds the listen socket (use port 0 to let the OS pick).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<IngestServer> {
        Ok(IngestServer {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address — the one to print when listening on port 0.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts exactly `publishers` connections, spawning one reader
    /// thread per connection with a `queue`-event bounded channel, and
    /// returns the merge stage over all of them. Blocks until every
    /// expected publisher has connected.
    pub fn accept_publishers(
        &self,
        publishers: usize,
        queue: usize,
    ) -> std::io::Result<IngestConnections> {
        let mut conns = Vec::with_capacity(publishers);
        for index in 0..publishers {
            let (stream, peer) = self.listener.accept()?;
            let (tx, rx) = sync_channel(queue.max(1));
            let reader = std::thread::Builder::new()
                .name(format!("ingest-conn-{index}"))
                .spawn(move || read_connection(index, peer, stream, tx))
                .expect("spawn ingest reader thread");
            conns.push(Conn { rx, reader });
        }
        Ok(IngestConnections { conns })
    }
}

/// The accepted publisher set, ready to merge.
pub struct IngestConnections {
    conns: Vec<Conn>,
}

impl IngestConnections {
    /// Splits into the merging event iterator and the per-connection
    /// join handles (reports become available once the merge drains —
    /// i.e. once every connection has closed).
    pub fn into_merge(self) -> (EventMerge, Vec<ConnJoin>) {
        let mut rxs = Vec::with_capacity(self.conns.len());
        let mut joins = Vec::with_capacity(self.conns.len());
        for conn in self.conns {
            rxs.push(Some(conn.rx));
            joins.push(ConnJoin {
                reader: conn.reader,
            });
        }
        let heads = rxs.iter().map(|_| None).collect();
        (EventMerge { rxs, heads }, joins)
    }

    /// Convenience: drains the merge to completion and joins every
    /// reader, returning the merged event sequence and all reports.
    pub fn collect(self) -> (Vec<ControlEvent>, Vec<ConnReport>) {
        let (merge, joins) = self.into_merge();
        let events: Vec<ControlEvent> = merge.collect();
        let reports = joins.into_iter().map(ConnJoin::join).collect();
        (events, reports)
    }
}

/// A pending reader-thread report.
pub struct ConnJoin {
    reader: JoinHandle<ConnReport>,
}

impl ConnJoin {
    /// Waits for the connection's reader thread and returns its report.
    pub fn join(self) -> ConnReport {
        self.reader
            .join()
            .expect("ingest reader thread must not panic")
    }
}

/// Blocking k-way merge of per-connection event streams by
/// `(timestamp, connection index)`.
///
/// An event is released only once every still-open stream has a head
/// buffered, so no later-arriving stream can hold an earlier timestamp
/// back — this is what restores the single-capture order from
/// [`split_capture`]d publishers. The price is that one stalled
/// publisher stalls the merge; the bounded queues upstream make that a
/// flow-control property, not a memory leak.
pub struct EventMerge {
    /// `None` once a stream has closed and drained.
    rxs: Vec<Option<Receiver<ControlEvent>>>,
    heads: Vec<Option<ControlEvent>>,
}

impl Iterator for EventMerge {
    type Item = ControlEvent;

    fn next(&mut self) -> Option<ControlEvent> {
        for (head, rx_slot) in self.heads.iter_mut().zip(&mut self.rxs) {
            if head.is_none() {
                if let Some(rx) = rx_slot {
                    match rx.recv() {
                        Ok(ev) => *head = Some(ev),
                        Err(_) => *rx_slot = None,
                    }
                }
            }
        }
        let next = self
            .heads
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.as_ref().map(|ev| (ev.ts, i)))
            .min()?
            .1;
        self.heads[next].take()
    }
}

/// Reader-thread body: handshake + chunked reads through a
/// [`FrameDecoder`] into the bounded channel.
fn read_connection(
    index: usize,
    peer: SocketAddr,
    mut stream: TcpStream,
    tx: SyncSender<ControlEvent>,
) -> ConnReport {
    let mut decoder = FrameDecoder::new();
    let mut chunk = [0u8; READ_CHUNK];
    let mut items = Vec::new();
    let mut report = ConnReport {
        index,
        peer,
        handshake_ok: false,
        bytes_read: 0,
        events: 0,
        stats: StreamStats::default(),
        first_errors: Vec::new(),
    };
    let mut receiver_gone = false;
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                report.bytes_read += n as u64;
                decoder.push(&chunk[..n], &mut items);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
        if !drain_items(&mut items, &tx, &mut report, &mut receiver_gone) {
            break;
        }
        if decoder.is_done() {
            // Bad magic: the handshake failed, drop the connection.
            break;
        }
    }
    if !decoder.is_done() {
        decoder.finish(&mut items);
    }
    drain_items(&mut items, &tx, &mut report, &mut receiver_gone);
    report.handshake_ok = !report
        .first_errors
        .iter()
        .any(|e| matches!(e, DecodeError::BadMagic))
        && report.bytes_read >= crate::log::CAPTURE_MAGIC.len() as u64;
    report.stats = decoder.stats();
    report
}

/// Forwards decoded items: events into the (blocking, bounded) channel,
/// errors into the report. Returns false once the merge side hung up.
fn drain_items(
    items: &mut Vec<Result<ControlEvent, DecodeError>>,
    tx: &SyncSender<ControlEvent>,
    report: &mut ConnReport,
    receiver_gone: &mut bool,
) -> bool {
    for item in items.drain(..) {
        match item {
            Ok(ev) => {
                if *receiver_gone {
                    continue;
                }
                if tx.send(ev).is_err() {
                    *receiver_gone = true;
                } else {
                    report.events += 1;
                }
            }
            Err(e) => {
                if report.first_errors.len() < KEPT_ERRORS {
                    report.first_errors.push(e);
                }
            }
        }
    }
    !*receiver_gone
}

/// What [`publish_capture`] sent.
#[derive(Debug, Clone, Copy, Default)]
pub struct PublishReport {
    /// Bytes written to the socket, magic included.
    pub bytes_sent: u64,
    /// Events in the (pre-mangle) stream.
    pub events: u64,
    /// Ground truth of any chaos applied mid-wire.
    pub chaos: Option<ChaosReport>,
}

/// Connects to `addr` and replays `log` as one publisher stream,
/// optionally mangling the bytes through a [`ChannelChaos`] proxy (the
/// network-fault model: dropped, duplicated, truncated, bit-flipped
/// frames plus skew/jitter). Writes in `WRITE_CHUNK`-byte pieces so
/// the receiving decoder always sees frames split across reads.
pub fn publish_capture<A: ToSocketAddrs>(
    addr: A,
    log: &ControllerLog,
    chaos: Option<&ChannelChaos>,
) -> std::io::Result<PublishReport> {
    let (bytes, chaos_report) = match chaos {
        Some(chaos) => {
            let (bytes, report) = chaos.mangle(log);
            (bytes, Some(report))
        }
        None => (log.to_wire_bytes(), None),
    };
    let mut stream = TcpStream::connect(addr)?;
    for piece in bytes.chunks(WRITE_CHUNK) {
        stream.write_all(piece)?;
    }
    stream.flush()?;
    drop(stream);
    Ok(PublishReport {
        bytes_sent: bytes.len() as u64,
        events: log.len() as u64,
        chaos: chaos_report,
    })
}

/// Deals a capture across `n` publisher streams such that the
/// `(timestamp, stream index)` merge of the streams reproduces the
/// capture's event order exactly.
///
/// Events are distributed round-robin **run by run**: each maximal run
/// of equal timestamps stays on one stream, so no timestamp tie ever
/// straddles two streams and the merge tie-breaker (stream index)
/// never has to guess the original order.
pub fn split_capture(log: &ControllerLog, n: usize) -> Vec<ControllerLog> {
    let n = n.max(1);
    let mut parts = vec![ControllerLog::new(); n];
    let mut turn = 0usize;
    let mut run_ts = None;
    for ev in log.events() {
        if run_ts != Some(ev.ts) {
            if run_ts.is_some() {
                turn = (turn + 1) % n;
            }
            run_ts = Some(ev.ts);
        }
        parts[turn].push(ev.clone());
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Direction;
    use openflow::messages::OfpMessage;
    use openflow::types::{DatapathId, Timestamp, Xid};

    fn ev(ts_us: u64, xid: u32) -> ControlEvent {
        ControlEvent {
            ts: Timestamp::from_micros(ts_us),
            dpid: DatapathId(1),
            direction: Direction::ToController,
            xid: Xid(xid),
            msg: OfpMessage::Hello,
        }
    }

    #[test]
    fn split_capture_confines_timestamp_runs_to_one_stream() {
        // Ties at 10 and 30 must each land whole on a single stream.
        let log: ControllerLog = vec![
            ev(10, 0),
            ev(10, 1),
            ev(20, 2),
            ev(30, 3),
            ev(30, 4),
            ev(30, 5),
            ev(40, 6),
        ]
        .into_iter()
        .collect();
        let parts = split_capture(&log, 3);
        assert_eq!(parts.iter().map(ControllerLog::len).sum::<usize>(), 7);
        for part in &parts {
            for w in part.events().windows(2) {
                assert!(w[0].ts <= w[1].ts, "streams stay time-ordered");
            }
        }
        for ts in [10u64, 30] {
            let holders = parts
                .iter()
                .filter(|p| p.events().iter().any(|e| e.ts.as_micros() == ts))
                .count();
            assert_eq!(holders, 1, "run at {ts}µs must not straddle streams");
        }
    }

    #[test]
    fn merge_of_split_streams_restores_capture_order() {
        let log: ControllerLog = (0..100u64).map(|i| ev(10 + i / 3, i as u32)).collect();
        for n in [1usize, 2, 4, 7] {
            let parts = split_capture(&log, n);
            // Feed the merge through real channels, pre-loaded.
            let mut rxs = Vec::new();
            for part in &parts {
                let (tx, rx) = sync_channel(200);
                for e in part.events() {
                    tx.send(e.clone()).unwrap();
                }
                drop(tx);
                rxs.push(Some(rx));
            }
            let heads = rxs.iter().map(|_| None).collect();
            let merged: Vec<ControlEvent> = EventMerge { rxs, heads }.collect();
            assert_eq!(merged, log.events().to_vec(), "{n} streams");
        }
    }

    #[test]
    fn loopback_roundtrip_single_publisher() {
        let log: ControllerLog = (0..50u64).map(|i| ev(100 + i, i as u32)).collect();
        let server = IngestServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let publisher = std::thread::spawn({
            let log = log.clone();
            move || publish_capture(addr, &log, None).unwrap()
        });
        let conns = server.accept_publishers(1, 16).unwrap();
        let (events, reports) = conns.collect();
        let sent = publisher.join().unwrap();
        assert_eq!(events, log.events().to_vec());
        assert_eq!(reports.len(), 1);
        assert!(reports[0].handshake_ok);
        assert_eq!(reports[0].events, 50);
        assert_eq!(reports[0].bytes_read, sent.bytes_sent);
        assert_eq!(reports[0].stats.frames_decoded, 50);
        assert_eq!(reports[0].stats.frames_skipped, 0);
    }

    #[test]
    fn handshake_failure_is_reported_not_fatal() {
        let server = IngestServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let publisher = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"HTTP/1.1 GET / please").unwrap();
        });
        let conns = server.accept_publishers(1, 16).unwrap();
        let (events, reports) = conns.collect();
        publisher.join().unwrap();
        assert!(events.is_empty());
        assert!(!reports[0].handshake_ok);
        assert!(matches!(reports[0].first_errors[0], DecodeError::BadMagic));
    }
}
