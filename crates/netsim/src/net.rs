//! Live TCP ingest: the wire between control-log publishers and a
//! FlowDiff diagnosis process.
//!
//! Two handshakes share the listen socket:
//!
//! * **Legacy capture streams** open with the 8-byte `FDIFFCAP` magic
//!   and are one shot: the connection *is* the stream, framed exactly
//!   like an `.fcap` file, and EOF ends it. This is the PR 9 wire
//!   format, kept byte-for-byte.
//! * **Sessions** open with `FDIFFSES` plus a 64-bit session id. The
//!   server replies `FDIFFACK` plus a *resume watermark* — how many
//!   events of that session it has already queued into the merge — and
//!   the publisher streams from that offset. A reconnecting publisher
//!   therefore resumes where the server actually is: nothing is lost,
//!   nothing is replayed twice. After the handshake the bytes are a
//!   tiny record layer (`[tag u8][len u32 LE][payload]`): `Data`
//!   records carry capture bytes (each connection attempt restarts a
//!   fresh `FDIFFCAP` stream), `Heartbeat` records keep a quiet
//!   connection distinguishable from a dead one, and `End` closes the
//!   session cleanly.
//!
//! The server side is a runtime accept loop ([`IngestServer::live`]):
//! connections are admitted, retired, killed (dead-but-open sockets)
//! and re-admitted (session resume) while the merge runs. Each of the
//! `expected` logical streams keeps one bounded channel for its whole
//! life; connections churn underneath by re-attaching to their
//! session's channel, so the downstream [`EventMerge`] never has to
//! re-plumb mid-run.
//!
//! Flow control is end-to-end and allocation-free, as before: decoded
//! events go into **bounded** channels, a slow consumer blocks the
//! readers, the kernel socket buffers fill, and TCP pushes back on the
//! publishers.
//!
//! Cross-stream ordering is handled by [`EventMerge`], a k-way merge by
//! `(timestamp, stream index)`. With no stall budget it blocks until
//! every open stream has an event buffered — the strict semantics that
//! make served epoch snapshots byte-identical to file runs over
//! [`split_capture`]d publishers. With a stall budget
//! (`ingest_stall_timeout_us`), a stream that stays silent past the
//! budget is *waived*: events from the other streams release without
//! it, the stream is marked [`ConnState::Stalled`] in its
//! [`SessionGauge`], and when it revives its late events lean on the
//! downstream `reorder_slack_us` buffer to re-sequence — the
//! detection-time vs. ordering-confidence tradeoff, as a tunable.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::faults::{ChannelChaos, ChaosReport, ConnFault, ConnPlan};
use crate::log::{
    encode_event, ControlEvent, ControllerLog, DecodeError, FrameDecoder, StreamStats,
    CAPTURE_MAGIC,
};

/// Read-chunk size for connection reader threads: large enough to
/// amortize syscalls, small enough that backpressure stays tight.
const READ_CHUNK: usize = 16 * 1024;

/// Write-chunk size for publishers: deliberately not a multiple of any
/// frame size, so served streams always exercise the incremental
/// decoder's mid-frame resume path.
const WRITE_CHUNK: usize = 8_192 - 7;

/// How many leading decode errors a [`ConnReport`] retains verbatim
/// (every error is still *counted* in the stats).
const KEPT_ERRORS: usize = 8;

/// Session handshake magic: `FDIFFSES` + session id (u64 LE).
pub const SESSION_MAGIC: &[u8; 8] = b"FDIFFSES";

/// Session handshake reply: `FDIFFACK` + resume watermark (u64 LE).
pub const SESSION_ACK: &[u8; 8] = b"FDIFFACK";

/// Session record tags (`[tag u8][len u32 LE][payload]`).
const REC_DATA: u8 = 0;
const REC_HEARTBEAT: u8 = 1;
const REC_END: u8 = 2;

/// Upper bound on one session record's payload; anything larger is a
/// corrupt or hostile length field, not data.
const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// Poll cadence of the accept loop (accept, reap, shutdown checks).
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// How long the merge parks between rescans when every remaining open
/// stream is waived (nothing to release, nothing to time out).
const PARKED_WAIT: Duration = Duration::from_millis(20);

/// Why a connection (or a whole session stream) stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisconnectCause {
    /// Legacy stream: the publisher closed after a complete frame.
    CleanEof,
    /// Session stream: the publisher sent an explicit `End` record.
    SessionEnd,
    /// The first bytes were neither `FDIFFCAP` nor `FDIFFSES`.
    HandshakeFailed,
    /// The socket died mid-stream with this error kind (a session
    /// publisher that vanished without `End` also lands here, as
    /// `UnexpectedEof`).
    Io(std::io::ErrorKind),
    /// The server killed a dead-but-open socket: no bytes and no
    /// heartbeat for several heartbeat intervals.
    IdleTimeout,
    /// A reconnect of the same session took the slot over.
    Superseded,
    /// The server retired a session no connection returned to.
    SessionAbandoned,
}

impl std::fmt::Display for DisconnectCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DisconnectCause::CleanEof => write!(f, "clean EOF"),
            DisconnectCause::SessionEnd => write!(f, "session end"),
            DisconnectCause::HandshakeFailed => write!(f, "handshake failed"),
            DisconnectCause::Io(kind) => write!(f, "io error: {kind:?}"),
            DisconnectCause::IdleTimeout => write!(f, "idle timeout"),
            DisconnectCause::Superseded => write!(f, "superseded by reconnect"),
            DisconnectCause::SessionAbandoned => write!(f, "session abandoned"),
        }
    }
}

/// Lifecycle state of one logical ingest stream, kept in its
/// [`SessionGauge`] and updated by whichever side observed the
/// transition (reader threads, the merge, the reaper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// No connection attached (yet, or between a drop and a resume).
    Waiting,
    /// A connection is attached and flowing.
    Active,
    /// The merge waived the stream: silent past the stall budget.
    Stalled,
    /// The stream ended cleanly (legacy EOF or session `End`).
    Ended,
    /// The server declared the stream dead (idle past the heartbeat
    /// horizon, or abandoned without a resume).
    Dead,
    /// The handshake never succeeded.
    Failed,
}

impl std::fmt::Display for ConnState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ConnState::Waiting => "waiting",
            ConnState::Active => "active",
            ConnState::Stalled => "STALLED",
            ConnState::Ended => "ended",
            ConnState::Dead => "DEAD",
            ConnState::Failed => "FAILED",
        };
        write!(f, "{s}")
    }
}

/// Live health of one logical ingest stream: lock-free counters shared
/// between the reader threads, the merge, the reaper, and whoever wants
/// to watch the run (the serve loop polls these to gate diffs while a
/// source is starved).
#[derive(Debug)]
pub struct SessionGauge {
    state: AtomicU8,
    events: AtomicU64,
    bytes: AtomicU64,
    connects: AtomicU64,
    resumes: AtomicU64,
    stalls: AtomicU64,
    disconnects: AtomicU64,
    /// Microseconds since server start of the last byte or heartbeat.
    last_activity_us: AtomicU64,
}

impl SessionGauge {
    fn new() -> SessionGauge {
        SessionGauge {
            state: AtomicU8::new(ConnState::Waiting as u8),
            events: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            connects: AtomicU64::new(0),
            resumes: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
            last_activity_us: AtomicU64::new(0),
        }
    }

    fn set_state(&self, s: ConnState) {
        self.state.store(s as u8, Ordering::SeqCst);
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ConnState {
        match self.state.load(Ordering::SeqCst) {
            0 => ConnState::Waiting,
            1 => ConnState::Active,
            2 => ConnState::Stalled,
            3 => ConnState::Ended,
            4 => ConnState::Dead,
            _ => ConnState::Failed,
        }
    }

    /// Events queued into the merge so far — the session's resume
    /// watermark.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::SeqCst)
    }

    /// Raw bytes read off sockets for this stream, magics included.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::SeqCst)
    }

    /// Successful handshakes (first connect plus every reconnect).
    pub fn connects(&self) -> u64 {
        self.connects.load(Ordering::SeqCst)
    }

    /// Reconnects that resumed mid-stream (watermark > 0).
    pub fn resumes(&self) -> u64 {
        self.resumes.load(Ordering::SeqCst)
    }

    /// Times the merge waived this stream past the stall budget.
    pub fn stalls(&self) -> u64 {
        self.stalls.load(Ordering::SeqCst)
    }

    /// Abrupt connection losses (everything except clean EOF / `End`).
    pub fn disconnects(&self) -> u64 {
        self.disconnects.load(Ordering::SeqCst)
    }

    /// True while the stream is in a degraded state (stalled or dead):
    /// its share of the window is missing, so downstream diffing should
    /// lower its confidence instead of alarming on missing behavior.
    pub fn is_degraded(&self) -> bool {
        matches!(self.state(), ConnState::Stalled | ConnState::Dead)
    }

    fn touch(&self, now_us: u64) {
        self.last_activity_us.store(now_us, Ordering::SeqCst);
    }
}

/// What one logical ingest stream delivered over its whole life —
/// every connection attempt folded together.
#[derive(Debug, Clone)]
pub struct ConnReport {
    /// Stream index in claim order (also the merge tie-breaker).
    pub index: usize,
    /// The last publisher address seen on this stream.
    pub peer: Option<SocketAddr>,
    /// The session id, for session streams (`None` = legacy stream).
    pub session: Option<u64>,
    /// True when at least one handshake on this stream succeeded.
    pub handshake_ok: bool,
    /// Raw bytes read off the sockets, magics and record headers
    /// included.
    pub bytes_read: u64,
    /// Events decoded and forwarded to the merge.
    pub events: u64,
    /// Successful handshakes (1 for an unflapped stream).
    pub connects: u64,
    /// Reconnects that resumed mid-stream.
    pub resumes: u64,
    /// Times the merge waived the stream past the stall budget.
    pub stalls: u64,
    /// Abrupt connection losses.
    pub disconnects: u64,
    /// Why the last connection (or the stream itself) stopped; `None`
    /// when no connection ever arrived.
    pub cause: Option<DisconnectCause>,
    /// Final lifecycle state.
    pub state: ConnState,
    /// Frame-level decode/skip counters accumulated across attempts —
    /// what a batch [`LogStream`](crate::log::LogStream) over the same
    /// bytes reports.
    pub stats: StreamStats,
    /// The first `KEPT_ERRORS` decode errors, for operator logs.
    pub first_errors: Vec<DecodeError>,
}

/// Tunables of the live accept loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct LiveOptions {
    /// Merge stall budget, microseconds of wall time; `0` = no budget,
    /// the merge blocks forever on a silent stream (strict PR 9
    /// ordering).
    pub stall_timeout_us: u64,
    /// Heartbeat horizon, microseconds: a connection silent for 4x this
    /// is killed (dead-but-open), a claimed session with no connection
    /// for 8x this is retired as abandoned. `0` disables both reaps.
    pub heartbeat_us: u64,
}

/// A blocking TCP ingest server for `.fcap`-framed control-log streams.
pub struct IngestServer {
    listener: TcpListener,
}

impl IngestServer {
    /// Binds the listen socket (use port 0 to let the OS pick).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> std::io::Result<IngestServer> {
        Ok(IngestServer {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address — the one to print when listening on port 0.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the runtime accept loop over `expected` logical streams,
    /// each with a `queue`-event bounded channel. Returns immediately;
    /// connections are admitted (and killed, and re-admitted) in the
    /// background while the caller drains the merge. The loop ends on
    /// its own once every claimed stream has ended and no free slot
    /// remains to claim, or when [`LiveIngest::finish`] is called.
    pub fn live(
        &self,
        expected: usize,
        queue: usize,
        opts: LiveOptions,
    ) -> std::io::Result<LiveIngest> {
        let expected = expected.max(1);
        let listener = self.listener.try_clone()?;
        listener.set_nonblocking(true)?;
        let addr = self.listener.local_addr()?;

        let mut rxs = Vec::with_capacity(expected);
        let mut keepers = Vec::with_capacity(expected);
        for _ in 0..expected {
            let (tx, rx) = sync_channel(queue.max(1));
            keepers.push(Some(tx));
            rxs.push(rx);
        }
        let gauges: Vec<Arc<SessionGauge>> = (0..expected)
            .map(|_| Arc::new(SessionGauge::new()))
            .collect();
        let shared = Arc::new(Shared {
            started: Instant::now(),
            expected,
            opts,
            stop: AtomicBool::new(false),
            gauges: gauges.clone(),
            slots: Mutex::new(SlotTable::new(expected, keepers)),
            readers: Mutex::new(Vec::new()),
        });
        let stall =
            (opts.stall_timeout_us > 0).then(|| Duration::from_micros(opts.stall_timeout_us));
        let merge = EventMerge::with_gauges(rxs, stall, gauges);
        let acceptor = std::thread::Builder::new()
            .name("ingest-accept".into())
            .spawn({
                let shared = shared.clone();
                move || accept_loop(listener, shared)
            })
            .expect("spawn ingest accept thread");
        Ok(LiveIngest {
            addr,
            shared,
            merge: Some(merge),
            acceptor: Some(acceptor),
        })
    }
}

/// A running live ingest: the accept loop plus the merge over its
/// streams. Take the merge with [`LiveIngest::take_merge`], drain it,
/// then call [`LiveIngest::finish`] for the per-stream reports.
pub struct LiveIngest {
    addr: SocketAddr,
    shared: Arc<Shared>,
    merge: Option<EventMerge>,
    acceptor: Option<JoinHandle<()>>,
}

impl LiveIngest {
    /// The listen address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The per-stream live gauges (poll these during the run).
    ///
    /// # Panics
    ///
    /// Never panics; the gauge set is fixed at [`IngestServer::live`].
    pub fn gauges(&self) -> Vec<Arc<SessionGauge>> {
        self.shared.gauges.clone()
    }

    /// True while any stream is currently stalled or dead — the signal
    /// the serve loop feeds into diff gating.
    pub fn any_degraded(&self) -> bool {
        self.shared.gauges.iter().any(|g| g.is_degraded())
    }

    /// Takes the merging event iterator. Call once.
    ///
    /// # Panics
    ///
    /// Panics on a second call.
    pub fn take_merge(&mut self) -> EventMerge {
        self.merge.take().expect("take_merge called twice")
    }

    /// Stops the accept loop, joins every reader, and returns the
    /// per-stream reports. Drain the merge first: readers block on the
    /// bounded channels until it is.
    pub fn finish(mut self) -> Vec<ConnReport> {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Readers blocked mid-socket-read are unstuck by killing their
        // sockets; their channels close right after.
        {
            let mut slots = self.shared.slots.lock().expect("slot table poisoned");
            for i in 0..self.shared.expected {
                if let Some(sock) = &slots.current[i] {
                    let _ = sock.shutdown(Shutdown::Both);
                }
                slots.keepers[i] = None;
            }
        }
        drop(self.merge.take());
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let readers = std::mem::take(&mut *self.shared.readers.lock().expect("readers poisoned"));
        for r in readers {
            let _ = r.join();
        }
        let slots = self.shared.slots.lock().expect("slot table poisoned");
        (0..self.shared.expected)
            .map(|i| {
                let g = &self.shared.gauges[i];
                let r = &slots.reports[i];
                ConnReport {
                    index: i,
                    peer: r.peer,
                    session: r.session,
                    handshake_ok: r.handshake_ok,
                    bytes_read: g.bytes(),
                    events: g.events(),
                    connects: g.connects(),
                    resumes: g.resumes(),
                    stalls: g.stalls(),
                    disconnects: g.disconnects(),
                    cause: r.cause,
                    state: g.state(),
                    stats: r.stats,
                    first_errors: r.first_errors.clone(),
                }
            })
            .collect()
    }
}

/// State shared between the accept loop, reader threads, and the
/// [`LiveIngest`] handle.
struct Shared {
    started: Instant,
    expected: usize,
    opts: LiveOptions,
    stop: AtomicBool,
    gauges: Vec<Arc<SessionGauge>>,
    slots: Mutex<SlotTable>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }
}

/// Per-stream bookkeeping behind one mutex: who holds which slot, the
/// keeper senders that keep merge channels open across reconnects, and
/// the folded per-stream reports.
struct SlotTable {
    /// One sender per stream, held for the stream's whole life; dropped
    /// to end the stream (the merge sees the channel close once the
    /// attached reader's clone is gone too).
    keepers: Vec<Option<SyncSender<ControlEvent>>>,
    /// Serializes handoff between an old connection draining out and a
    /// resume taking over (the watermark must be read after the old
    /// reader queued its last event).
    feeds: Vec<Arc<Mutex<()>>>,
    /// Session id -> slot index.
    sessions: HashMap<u64, usize>,
    /// The live socket per slot (a `try_clone`), so the reaper and a
    /// superseding reconnect can kill it from outside.
    current: Vec<Option<TcpStream>>,
    /// Cause to record if the current socket dies because we killed it.
    kill: Vec<Option<DisconnectCause>>,
    reports: Vec<SlotReport>,
    claimed: usize,
}

#[derive(Debug, Default, Clone)]
struct SlotReport {
    peer: Option<SocketAddr>,
    session: Option<u64>,
    handshake_ok: bool,
    stats: StreamStats,
    first_errors: Vec<DecodeError>,
    cause: Option<DisconnectCause>,
}

impl SlotTable {
    fn new(expected: usize, keepers: Vec<Option<SyncSender<ControlEvent>>>) -> SlotTable {
        SlotTable {
            keepers,
            feeds: (0..expected).map(|_| Arc::new(Mutex::new(()))).collect(),
            sessions: HashMap::new(),
            current: (0..expected).map(|_| None).collect(),
            kill: (0..expected).map(|_| None).collect(),
            reports: vec![SlotReport::default(); expected],
            claimed: 0,
        }
    }

    fn all_ended(&self, expected: usize) -> bool {
        self.claimed == expected && self.keepers.iter().all(Option::is_none)
    }
}

/// The accept loop body: nonblocking accepts on a poll cadence, plus
/// the reap scan (dead-but-open connections, abandoned sessions).
fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut index = 0usize;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        {
            let slots = shared.slots.lock().expect("slot table poisoned");
            if slots.all_ended(shared.expected) {
                break;
            }
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                let for_reader = shared.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("ingest-conn-{index}"))
                    .spawn(move || read_connection(peer, stream, for_reader))
                    .expect("spawn ingest reader thread");
                index += 1;
                shared_push_reader(&shared, handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                reap(&shared);
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                reap(&shared);
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

fn shared_push_reader(shared: &Arc<Shared>, handle: JoinHandle<()>) {
    shared
        .readers
        .lock()
        .expect("readers poisoned")
        .push(handle);
}

/// The reap scan: with a heartbeat horizon configured, kill sockets
/// that went silent past 4x the horizon (dead-but-open) and retire
/// claimed sessions nobody reconnected to within 8x (abandoned). Both
/// only fire for *claimed* slots: a publisher that never connected is
/// waited for indefinitely, like the PR 9 barrier.
fn reap(shared: &Arc<Shared>) {
    let hb = shared.opts.heartbeat_us;
    if hb == 0 {
        return;
    }
    let now = shared.now_us();
    let conn_dead_after = hb.saturating_mul(4);
    let session_dead_after = hb.saturating_mul(8);
    let mut slots = shared.slots.lock().expect("slot table poisoned");
    for i in 0..shared.expected {
        if slots.keepers[i].is_none() || shared.gauges[i].connects() == 0 {
            continue;
        }
        let idle = now.saturating_sub(shared.gauges[i].last_activity_us.load(Ordering::SeqCst));
        if slots.current[i].is_some() {
            if idle > conn_dead_after && slots.kill[i].is_none() {
                slots.kill[i] = Some(DisconnectCause::IdleTimeout);
                if let Some(sock) = &slots.current[i] {
                    let _ = sock.shutdown(Shutdown::Both);
                }
            }
        } else if idle > session_dead_after {
            // Abandoned: end the stream so the merge (and the run) can
            // complete without it.
            slots.keepers[i] = None;
            slots.reports[i].cause = Some(DisconnectCause::SessionAbandoned);
            shared.gauges[i].set_state(ConnState::Dead);
        }
    }
}

/// What the first 8 bytes of a connection said.
enum Handshake {
    Legacy([u8; 8], usize),
    Session(u64),
}

/// Reader-thread body: classify the handshake, claim or re-claim a
/// stream slot, then feed the slot's channel until the connection ends.
fn read_connection(peer: SocketAddr, mut stream: TcpStream, shared: Arc<Shared>) {
    let mut magic = [0u8; 8];
    let mut got = 0usize;
    while got < magic.len() {
        match stream.read(&mut magic[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    let handshake = if got == 8 && &magic == SESSION_MAGIC {
        let mut id = [0u8; 8];
        if stream.read_exact(&mut id).is_err() {
            return; // died mid-handshake: nothing claimed, nothing owed
        }
        Handshake::Session(u64::from_le_bytes(id))
    } else {
        Handshake::Legacy(magic, got)
    };
    match handshake {
        Handshake::Legacy(first, first_len) => {
            run_legacy_conn(peer, stream, &shared, first, first_len)
        }
        Handshake::Session(id) => run_session_conn(peer, stream, &shared, id),
    }
}

/// Claims a slot for a connection. Session ids re-claim their slot;
/// everyone else takes the next free one. Returns the slot index, its
/// feed lock, its channel sender, and whether an old connection had to
/// be superseded first.
#[allow(clippy::type_complexity)]
fn claim_slot(
    shared: &Arc<Shared>,
    peer: SocketAddr,
    session: Option<u64>,
    stream: &TcpStream,
) -> Option<(usize, Arc<Mutex<()>>, SyncSender<ControlEvent>)> {
    let mut slots = shared.slots.lock().expect("slot table poisoned");
    let slot = match session {
        Some(id) => match slots.sessions.get(&id) {
            Some(&i) => i,
            None => {
                if slots.claimed >= shared.expected {
                    return None;
                }
                let i = slots.claimed;
                slots.claimed += 1;
                slots.sessions.insert(id, i);
                i
            }
        },
        None => {
            if slots.claimed >= shared.expected {
                return None;
            }
            let i = slots.claimed;
            slots.claimed += 1;
            i
        }
    };
    let tx = slots.keepers[slot].clone()?; // stream already retired: refuse
                                           // Supersede a still-attached connection of the same stream (a
                                           // half-dead socket the publisher already gave up on).
    if slots.current[slot].is_some() {
        if slots.kill[slot].is_none() {
            slots.kill[slot] = Some(DisconnectCause::Superseded);
        }
        if let Some(old) = &slots.current[slot] {
            let _ = old.shutdown(Shutdown::Both);
        }
    }
    slots.current[slot] = stream.try_clone().ok();
    slots.reports[slot].peer = Some(peer);
    slots.reports[slot].session = session;
    let feed = slots.feeds[slot].clone();
    shared.gauges[slot].touch(shared.now_us());
    Some((slot, feed, tx))
}

/// Marks a connection attempt over: folds its decode stats into the
/// slot report, records the cause, detaches the socket, and (when the
/// stream itself is over) drops the keeper so the merge retires it.
fn end_attempt(
    shared: &Arc<Shared>,
    slot: usize,
    decoder_stats: StreamStats,
    errors: Vec<DecodeError>,
    cause: DisconnectCause,
    stream_over: bool,
    final_state: ConnState,
) {
    let mut slots = shared.slots.lock().expect("slot table poisoned");
    let report = &mut slots.reports[slot];
    report.stats.frames_decoded += decoder_stats.frames_decoded;
    report.stats.frames_skipped += decoder_stats.frames_skipped;
    report.stats.bytes_skipped += decoder_stats.bytes_skipped;
    for e in errors {
        if report.first_errors.len() < KEPT_ERRORS {
            report.first_errors.push(e);
        }
    }
    // A kill we initiated (reaper, supersede) outranks the raw io error
    // the victim's reader observed.
    let cause = slots.kill[slot].take().unwrap_or(cause);
    slots.reports[slot].cause = Some(cause);
    slots.current[slot] = None;
    // Superseded counts: whether the victim's reader saw the EOF first
    // or the replacement claimed the slot first, the old socket was an
    // abrupt loss — only the racer differs, not the event.
    let abrupt = matches!(
        cause,
        DisconnectCause::Io(_) | DisconnectCause::IdleTimeout | DisconnectCause::Superseded
    );
    if abrupt {
        shared.gauges[slot]
            .disconnects
            .fetch_add(1, Ordering::SeqCst);
    }
    if stream_over {
        slots.keepers[slot] = None;
        shared.gauges[slot].set_state(final_state);
    } else {
        shared.gauges[slot].set_state(ConnState::Waiting);
    }
}

/// Legacy (`FDIFFCAP`-first) connection: the connection is the stream.
/// EOF, error, or bad magic all end the stream — exactly the PR 9
/// semantics, including the garbage-handshake path (the bytes go
/// through the decoder, which flags `BadMagic` and stops).
fn run_legacy_conn(
    peer: SocketAddr,
    mut stream: TcpStream,
    shared: &Arc<Shared>,
    first: [u8; 8],
    first_len: usize,
) {
    let Some((slot, feed, tx)) = claim_slot(shared, peer, None, &stream) else {
        return; // all slots busy: refuse
    };
    let _guard = feed.lock().expect("feed lock poisoned");
    let gauge = shared.gauges[slot].clone();
    gauge.connects.fetch_add(1, Ordering::SeqCst);
    gauge.set_state(ConnState::Active);
    let handshake_ok = first_len == 8 && &first == CAPTURE_MAGIC;
    if handshake_ok {
        let mut slots = shared.slots.lock().expect("slot table poisoned");
        slots.reports[slot].handshake_ok = true;
    }

    let mut decoder = FrameDecoder::new();
    let mut items = Vec::new();
    let mut errors = Vec::new();
    let mut receiver_gone = false;
    gauge.bytes.fetch_add(first_len as u64, Ordering::SeqCst);
    decoder.push(&first[..first_len], &mut items);
    drain_items(&mut items, &tx, &gauge, &mut errors, &mut receiver_gone);

    let mut chunk = [0u8; READ_CHUNK];
    let mut cause = DisconnectCause::CleanEof;
    loop {
        if decoder.is_done() {
            // Bad magic: the handshake failed, drop the connection.
            cause = DisconnectCause::HandshakeFailed;
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                gauge.bytes.fetch_add(n as u64, Ordering::SeqCst);
                gauge.touch(shared.now_us());
                decoder.push(&chunk[..n], &mut items);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                cause = DisconnectCause::Io(e.kind());
                break;
            }
        }
        if !drain_items(&mut items, &tx, &gauge, &mut errors, &mut receiver_gone) {
            break;
        }
    }
    if !decoder.is_done() {
        decoder.finish(&mut items);
    } else if !handshake_ok {
        cause = DisconnectCause::HandshakeFailed;
    }
    drain_items(&mut items, &tx, &gauge, &mut errors, &mut receiver_gone);
    let final_state = if handshake_ok {
        ConnState::Ended
    } else {
        ConnState::Failed
    };
    end_attempt(
        shared,
        slot,
        decoder.stats(),
        errors,
        cause,
        true,
        final_state,
    );
}

/// Session connection: ack with the resume watermark, then the record
/// layer until `End`, death, or a supersede.
fn run_session_conn(peer: SocketAddr, mut stream: TcpStream, shared: &Arc<Shared>, id: u64) {
    let Some((slot, feed, tx)) = claim_slot(shared, peer, Some(id), &stream) else {
        return; // unknown session and no free slot, or stream retired
    };
    // The feed lock serializes against the previous attempt: once held,
    // the old reader has queued its last decoded event, so the gauge's
    // event count is the exact resume point.
    let _guard = feed.lock().expect("feed lock poisoned");
    let gauge = shared.gauges[slot].clone();
    let watermark = gauge.events();
    let mut ack = Vec::with_capacity(16);
    ack.extend_from_slice(SESSION_ACK);
    ack.extend_from_slice(&watermark.to_le_bytes());
    if stream.write_all(&ack).is_err() {
        end_attempt(
            shared,
            slot,
            StreamStats::default(),
            Vec::new(),
            DisconnectCause::Io(std::io::ErrorKind::BrokenPipe),
            false,
            ConnState::Waiting,
        );
        return;
    }
    gauge.connects.fetch_add(1, Ordering::SeqCst);
    if watermark > 0 {
        gauge.resumes.fetch_add(1, Ordering::SeqCst);
    }
    gauge.set_state(ConnState::Active);
    {
        let mut slots = shared.slots.lock().expect("slot table poisoned");
        slots.reports[slot].handshake_ok = true;
    }
    gauge.bytes.fetch_add(16, Ordering::SeqCst); // magic + session id

    let mut decoder = FrameDecoder::new();
    let mut items = Vec::new();
    let mut errors = Vec::new();
    let mut receiver_gone = false;
    let mut header = [0u8; 5];
    let mut payload = vec![0u8; READ_CHUNK];
    let (cause, clean_end) = loop {
        match read_full(&mut stream, &mut header) {
            Ok(true) => {}
            Ok(false) => {
                break (
                    DisconnectCause::Io(std::io::ErrorKind::UnexpectedEof),
                    false,
                )
            }
            Err(e) => break (DisconnectCause::Io(e.kind()), false),
        }
        gauge.bytes.fetch_add(header.len() as u64, Ordering::SeqCst);
        gauge.touch(shared.now_us());
        let tag = header[0];
        let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]);
        if len > MAX_RECORD_LEN {
            break (DisconnectCause::Io(std::io::ErrorKind::InvalidData), false);
        }
        match tag {
            REC_HEARTBEAT => continue,
            REC_END => break (DisconnectCause::SessionEnd, true),
            REC_DATA => {
                let mut remaining = len as usize;
                let mut broken = None;
                while remaining > 0 {
                    let want = remaining.min(payload.len());
                    match read_full(&mut stream, &mut payload[..want]) {
                        Ok(true) => {}
                        Ok(false) => {
                            broken = Some(DisconnectCause::Io(std::io::ErrorKind::UnexpectedEof));
                            break;
                        }
                        Err(e) => {
                            broken = Some(DisconnectCause::Io(e.kind()));
                            break;
                        }
                    }
                    gauge.bytes.fetch_add(want as u64, Ordering::SeqCst);
                    gauge.touch(shared.now_us());
                    decoder.push(&payload[..want], &mut items);
                    if !drain_items(&mut items, &tx, &gauge, &mut errors, &mut receiver_gone) {
                        broken = Some(DisconnectCause::Io(std::io::ErrorKind::BrokenPipe));
                        break;
                    }
                    remaining -= want;
                }
                if let Some(cause) = broken {
                    break (cause, false);
                }
            }
            _ => break (DisconnectCause::Io(std::io::ErrorKind::InvalidData), false),
        }
    };
    if !decoder.is_done() {
        decoder.finish(&mut items);
    }
    drain_items(&mut items, &tx, &gauge, &mut errors, &mut receiver_gone);
    end_attempt(
        shared,
        slot,
        decoder.stats(),
        errors,
        cause,
        clean_end,
        ConnState::Ended,
    );
}

/// `read_exact` that reports clean EOF (`Ok(false)`) instead of turning
/// it into an error, and retries `Interrupted`.
fn read_full(stream: &mut TcpStream, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut got = 0usize;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => return Ok(false),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Forwards decoded items: events into the (blocking, bounded) channel,
/// errors into the report. Returns false once the merge side hung up.
fn drain_items(
    items: &mut Vec<Result<ControlEvent, DecodeError>>,
    tx: &SyncSender<ControlEvent>,
    gauge: &SessionGauge,
    errors: &mut Vec<DecodeError>,
    receiver_gone: &mut bool,
) -> bool {
    for item in items.drain(..) {
        match item {
            Ok(ev) => {
                if *receiver_gone {
                    continue;
                }
                if tx.send(ev).is_err() {
                    *receiver_gone = true;
                } else {
                    gauge.events.fetch_add(1, Ordering::SeqCst);
                }
            }
            Err(e) => {
                if errors.len() < KEPT_ERRORS {
                    errors.push(e);
                }
            }
        }
    }
    !*receiver_gone
}

/// K-way merge of per-stream event channels by `(timestamp, stream
/// index)`.
///
/// With no stall budget an event is released only once every still-open
/// stream has a head buffered, so no later-arriving stream can hold an
/// earlier timestamp back — this is what restores the single-capture
/// order from [`split_capture`]d publishers, at the price that one
/// stalled publisher stalls the merge.
///
/// With a stall budget, a stream that stays silent past the budget is
/// *waived*: releases proceed without it (its gauge flips to
/// [`ConnState::Stalled`] and counts the stall), and the first event it
/// produces afterwards revives it. Events released past a waived stream
/// may precede that stream's late arrivals — bounded disorder the
/// downstream `reorder_slack_us` buffer re-sequences, exactly like a
/// disordered capture file.
pub struct EventMerge {
    /// `None` once a stream has closed and drained.
    rxs: Vec<Option<Receiver<ControlEvent>>>,
    heads: Vec<Option<ControlEvent>>,
    /// `None` = block forever (strict ordering).
    stall: Option<Duration>,
    /// When a still-open, headless stream was first observed empty.
    silent_since: Vec<Option<Instant>>,
    /// Streams currently waived past.
    waived: Vec<bool>,
    /// Per-stream gauges to mark Stalled/Active on; empty when the
    /// merge runs standalone (tests, pre-session pipelines).
    gauges: Vec<Arc<SessionGauge>>,
}

impl EventMerge {
    /// A merge over plain receivers (no gauges), with an optional stall
    /// budget.
    pub fn new(rxs: Vec<Receiver<ControlEvent>>, stall: Option<Duration>) -> EventMerge {
        EventMerge::with_gauges(rxs, stall, Vec::new())
    }

    fn with_gauges(
        rxs: Vec<Receiver<ControlEvent>>,
        stall: Option<Duration>,
        gauges: Vec<Arc<SessionGauge>>,
    ) -> EventMerge {
        let n = rxs.len();
        EventMerge {
            rxs: rxs.into_iter().map(Some).collect(),
            heads: (0..n).map(|_| None).collect(),
            stall,
            silent_since: (0..n).map(|_| None).collect(),
            waived: (0..n).map(|_| false).collect(),
            gauges,
        }
    }

    fn got_head(&mut self, i: usize, ev: ControlEvent) {
        self.heads[i] = Some(ev);
        self.silent_since[i] = None;
        if self.waived[i] {
            self.waived[i] = false;
            if let Some(g) = self.gauges.get(i) {
                if g.state() == ConnState::Stalled {
                    g.set_state(ConnState::Active);
                }
            }
        }
    }

    fn waive(&mut self, i: usize) {
        self.waived[i] = true;
        self.silent_since[i] = None;
        if let Some(g) = self.gauges.get(i) {
            g.stalls.fetch_add(1, Ordering::SeqCst);
            if !matches!(g.state(), ConnState::Dead | ConnState::Ended) {
                g.set_state(ConnState::Stalled);
            }
        }
    }

    fn close(&mut self, i: usize) {
        self.rxs[i] = None;
        self.silent_since[i] = None;
        self.waived[i] = false;
    }

    /// Index of the smallest buffered head by `(ts, index)`.
    fn min_head(&self) -> Option<usize> {
        self.heads
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.as_ref().map(|ev| (ev.ts, i)))
            .min()
            .map(|(_, i)| i)
    }
}

impl Iterator for EventMerge {
    type Item = ControlEvent;

    fn next(&mut self) -> Option<ControlEvent> {
        loop {
            // Nonblocking sweep: pick up arrivals, note silences.
            let mut pending: Vec<usize> = Vec::new();
            for i in 0..self.rxs.len() {
                if self.heads[i].is_some() {
                    continue;
                }
                let Some(rx) = &self.rxs[i] else { continue };
                match rx.try_recv() {
                    Ok(ev) => self.got_head(i, ev),
                    Err(TryRecvError::Empty) => {
                        if self.waived[i] {
                            continue;
                        }
                        if self.silent_since[i].is_none() {
                            self.silent_since[i] = Some(Instant::now());
                        }
                        pending.push(i);
                    }
                    Err(TryRecvError::Disconnected) => self.close(i),
                }
            }
            if pending.is_empty() {
                if let Some(i) = self.min_head() {
                    return self.heads[i].take();
                }
                // No heads and nothing pending: either every stream is
                // closed, or only waived streams remain open — park
                // briefly and rescan for their revival.
                let i = (0..self.rxs.len()).find(|&i| self.rxs[i].is_some())?;
                let Some(rx) = &self.rxs[i] else { continue };
                match rx.recv_timeout(PARKED_WAIT) {
                    Ok(ev) => self.got_head(i, ev),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => self.close(i),
                }
                continue;
            }
            match self.stall {
                None => {
                    // Strict mode: block until the stream produces or
                    // closes (the PR 9 semantics, byte for byte).
                    let i = pending[0];
                    let Some(rx) = &self.rxs[i] else { continue };
                    match rx.recv() {
                        Ok(ev) => self.got_head(i, ev),
                        Err(_) => self.close(i),
                    }
                }
                Some(budget) => {
                    // Wait on the pending stream whose budget runs out
                    // first; waive it when it does. Budgets run from
                    // when a stream was first seen silent, so several
                    // stalled streams time out together rather than
                    // serially.
                    let now = Instant::now();
                    let (i, deadline) = pending
                        .iter()
                        .map(|&i| {
                            let since = self.silent_since[i].unwrap_or(now);
                            (i, since + budget)
                        })
                        .min_by_key(|&(_, d)| d)
                        .expect("pending is nonempty");
                    if deadline <= now {
                        self.waive(i);
                        continue;
                    }
                    let Some(rx) = &self.rxs[i] else { continue };
                    match rx.recv_timeout(deadline - now) {
                        Ok(ev) => self.got_head(i, ev),
                        Err(RecvTimeoutError::Timeout) => self.waive(i),
                        Err(RecvTimeoutError::Disconnected) => self.close(i),
                    }
                }
            }
        }
    }
}

/// What a publisher call sent.
#[derive(Debug, Clone, Copy, Default)]
pub struct PublishReport {
    /// Bytes written to the socket(s), magics and record headers
    /// included.
    pub bytes_sent: u64,
    /// Events in the (pre-mangle) stream.
    pub events: u64,
    /// Ground truth of any byte-level chaos applied mid-wire.
    pub chaos: Option<ChaosReport>,
    /// Successful connects (1 + reconnects).
    pub connects: u32,
    /// Reconnects that resumed from a nonzero watermark.
    pub resumes: u32,
    /// Unplanned retries spent (connect/write failures).
    pub retries: u32,
    /// Planned chaos faults injected (disconnects, stalls, trickles).
    pub faults: u32,
}

/// Connects to `addr` and replays `log` as one **legacy** publisher
/// stream (the PR 9 wire format: `FDIFFCAP`, then frames, then EOF),
/// optionally mangling the bytes through a [`ChannelChaos`] proxy.
/// Writes in `WRITE_CHUNK`-byte pieces so the receiving decoder always
/// sees frames split across reads, then half-closes — `shutdown(Write)`
/// followed by a read to EOF — so the server's close acks that every
/// in-flight byte was consumed (an immediate close could RST and
/// discard buffered bytes under load).
pub fn publish_capture<A: ToSocketAddrs>(
    addr: A,
    log: &ControllerLog,
    chaos: Option<&ChannelChaos>,
) -> std::io::Result<PublishReport> {
    publish_capture_paced(addr, log, chaos, None)
}

/// [`publish_capture`] with an optional mid-stream write pause: after
/// `stall_after_bytes`, sleep `stall` with the socket open — the
/// "healthy publisher wedged upstream" the serve smoke drills.
pub fn publish_capture_paced<A: ToSocketAddrs>(
    addr: A,
    log: &ControllerLog,
    chaos: Option<&ChannelChaos>,
    stall: Option<(u64, Duration)>,
) -> std::io::Result<PublishReport> {
    let (bytes, chaos_report) = match chaos {
        Some(chaos) => {
            let (bytes, report) = chaos.mangle(log);
            (bytes, Some(report))
        }
        None => (log.to_wire_bytes(), None),
    };
    let mut stream = TcpStream::connect(addr)?;
    let mut written = 0u64;
    let mut pending_stall = stall;
    for piece in bytes.chunks(WRITE_CHUNK) {
        stream.write_all(piece)?;
        written += piece.len() as u64;
        if let Some((after, pause)) = pending_stall {
            if written >= after {
                std::thread::sleep(pause);
                pending_stall = None;
            }
        }
    }
    stream.flush()?;
    half_close(stream)?;
    Ok(PublishReport {
        bytes_sent: bytes.len() as u64,
        events: log.len() as u64,
        chaos: chaos_report,
        connects: 1,
        ..PublishReport::default()
    })
}

/// Half-close: shut the write side, then read to EOF so the peer's
/// close confirms it consumed the full stream.
fn half_close(mut stream: TcpStream) -> std::io::Result<()> {
    stream.shutdown(Shutdown::Write)?;
    let mut sink = [0u8; 256];
    loop {
        match stream.read(&mut sink) {
            Ok(0) => return Ok(()),
            Ok(_) => continue,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // The peer may close abruptly after we shut our side; the
            // stream was fully written either way.
            Err(_) => return Ok(()),
        }
    }
}

/// Options for a [`publish_session`] run.
#[derive(Debug, Clone, Default)]
pub struct SessionOptions {
    /// The session id (pick one per logical stream; reconnects with the
    /// same id resume).
    pub session: u64,
    /// How many *unplanned* failures (connect refused, write error) to
    /// retry past before giving up. Planned [`ConnPlan`] faults do not
    /// spend this budget.
    pub retry_budget: u32,
    /// Base reconnect delay, microseconds; doubles per consecutive
    /// retry, plus a seeded jitter of up to 25% so a publisher fleet
    /// does not reconnect in lockstep. `0` falls back to 1ms.
    pub backoff_us: u64,
    /// Planned connection faults to inject (flaps, stalls, trickle).
    pub plan: Option<ConnPlan>,
}

/// Connects to `addr` as a **session** publisher and replays `log`,
/// resuming from the server's watermark on every (re)connect: bounded
/// retry with exponential backoff and jitter on connect/write failure,
/// plus the planned faults of `opts.plan` (abrupt disconnects that
/// exercise resume, write stalls, slow-loris trickle). Returns once the
/// server acked the full stream (`End` record, half-close) or the retry
/// budget is spent.
pub fn publish_session<A: ToSocketAddrs>(
    addr: A,
    log: &ControllerLog,
    opts: &SessionOptions,
) -> std::io::Result<PublishReport> {
    let events = log.events();
    let mut report = PublishReport {
        events: events.len() as u64,
        ..PublishReport::default()
    };
    let mut rng = StdRng::seed_from_u64(opts.session ^ 0x5EED_CAFE);
    let mut retries = 0u32;
    let mut plan = opts.plan.clone().unwrap_or_default();
    'attempts: loop {
        let mut stream = match TcpStream::connect(&addr) {
            Ok(s) => s,
            Err(e) => {
                retry_or_bail(&mut retries, opts, &mut rng, &mut report, e)?;
                continue 'attempts;
            }
        };
        let watermark = match session_handshake(&mut stream, opts.session, &mut report) {
            Ok(w) => w,
            Err(e) => {
                retry_or_bail(&mut retries, opts, &mut rng, &mut report, e)?;
                continue 'attempts;
            }
        };
        report.connects += 1;
        if watermark > 0 {
            report.resumes += 1;
        }
        let start = (watermark as usize).min(events.len());

        // The attempt's payload stream: a fresh capture (magic first),
        // frames from the watermark on.
        let mut payload = Vec::with_capacity(WRITE_CHUNK * 2);
        payload.extend_from_slice(CAPTURE_MAGIC);
        let mut trickle_left = 0u64;
        for (off, ev) in events.iter().enumerate().skip(start) {
            encode_event(ev, &mut payload);
            let mut flap = false;
            for fault in plan.fire_at(off as u64 + 1) {
                report.faults += 1;
                match fault {
                    ConnFault::Disconnect => flap = true,
                    ConnFault::Stall { ms } => {
                        if let Err(e) = write_data_record(&mut stream, &mut payload, &mut report, 1)
                        {
                            retry_or_bail(&mut retries, opts, &mut rng, &mut report, e)?;
                            continue 'attempts;
                        }
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                    ConnFault::Trickle { events: n } => trickle_left = trickle_left.max(n),
                }
            }
            if flap {
                // Planned abrupt death: flush what is framed, then
                // vanish without `End`. The next attempt resumes from
                // whatever the server actually queued.
                let _ = write_data_record(&mut stream, &mut payload, &mut report, 1);
                drop(stream);
                continue 'attempts;
            }
            let chunk = if trickle_left > 0 {
                trickle_left -= 1;
                64 // slow-loris: drip tiny records
            } else {
                WRITE_CHUNK
            };
            if payload.len() >= chunk {
                if let Err(e) = write_data_record(&mut stream, &mut payload, &mut report, chunk) {
                    retry_or_bail(&mut retries, opts, &mut rng, &mut report, e)?;
                    continue 'attempts;
                }
            }
        }
        if let Err(e) = write_data_record(&mut stream, &mut payload, &mut report, 1) {
            retry_or_bail(&mut retries, opts, &mut rng, &mut report, e)?;
            continue 'attempts;
        }
        let end = [REC_END, 0, 0, 0, 0];
        if let Err(e) = stream.write_all(&end) {
            retry_or_bail(&mut retries, opts, &mut rng, &mut report, e)?;
            continue 'attempts;
        }
        report.bytes_sent += end.len() as u64;
        stream.flush()?;
        half_close(stream)?;
        report.retries = retries;
        return Ok(report);
    }
}

/// Sends `FDIFFSES` + id, reads `FDIFFACK` + watermark.
fn session_handshake(
    stream: &mut TcpStream,
    session: u64,
    report: &mut PublishReport,
) -> std::io::Result<u64> {
    let mut hello = Vec::with_capacity(16);
    hello.extend_from_slice(SESSION_MAGIC);
    hello.extend_from_slice(&session.to_le_bytes());
    stream.write_all(&hello)?;
    report.bytes_sent += hello.len() as u64;
    let mut ack = [0u8; 16];
    stream.read_exact(&mut ack)?;
    if &ack[..8] != SESSION_ACK {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "server did not speak FDIFFACK",
        ));
    }
    Ok(u64::from_le_bytes(ack[8..16].try_into().expect("8 bytes")))
}

/// Drains `payload` into `Data` records of at most `chunk` bytes each.
fn write_data_record(
    stream: &mut TcpStream,
    payload: &mut Vec<u8>,
    report: &mut PublishReport,
    chunk: usize,
) -> std::io::Result<()> {
    let chunk = chunk.max(1);
    let mut off = 0usize;
    while off < payload.len() {
        let n = (payload.len() - off).min(chunk);
        let mut header = [REC_DATA, 0, 0, 0, 0];
        header[1..5].copy_from_slice(&(n as u32).to_le_bytes());
        stream.write_all(&header)?;
        stream.write_all(&payload[off..off + n])?;
        report.bytes_sent += (header.len() + n) as u64;
        off += n;
    }
    payload.clear();
    Ok(())
}

/// Spends one unit of retry budget (or gives up with `err`), sleeping
/// the exponential backoff plus seeded jitter.
fn retry_or_bail(
    retries: &mut u32,
    opts: &SessionOptions,
    rng: &mut StdRng,
    report: &mut PublishReport,
    err: std::io::Error,
) -> std::io::Result<()> {
    *retries += 1;
    report.retries = *retries;
    if *retries > opts.retry_budget {
        return Err(err);
    }
    let base = opts.backoff_us.max(1_000);
    let backoff = base.saturating_mul(1u64 << (*retries - 1).min(16));
    let jitter = rng.gen_range(0..=backoff / 4);
    std::thread::sleep(Duration::from_micros(backoff + jitter));
    Ok(())
}

/// Deals a capture across `n` publisher streams such that the
/// `(timestamp, stream index)` merge of the streams reproduces the
/// capture's event order exactly.
///
/// Events are distributed round-robin **run by run**: each maximal run
/// of equal timestamps stays on one stream, so no timestamp tie ever
/// straddles two streams and the merge tie-breaker (stream index)
/// never has to guess the original order.
pub fn split_capture(log: &ControllerLog, n: usize) -> Vec<ControllerLog> {
    let n = n.max(1);
    let mut parts = vec![ControllerLog::new(); n];
    let mut turn = 0usize;
    let mut run_ts = None;
    for ev in log.events() {
        if run_ts != Some(ev.ts) {
            if run_ts.is_some() {
                turn = (turn + 1) % n;
            }
            run_ts = Some(ev.ts);
        }
        parts[turn].push(ev.clone());
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Direction;
    use openflow::messages::OfpMessage;
    use openflow::types::{DatapathId, Timestamp, Xid};

    fn ev(ts_us: u64, xid: u32) -> ControlEvent {
        ControlEvent {
            ts: Timestamp::from_micros(ts_us),
            dpid: DatapathId(1),
            direction: Direction::ToController,
            xid: Xid(xid),
            msg: OfpMessage::Hello,
        }
    }

    /// One live server over `n` expected streams; returns the merged
    /// events and the reports once everything ends.
    fn live_collect(
        server: &IngestServer,
        n: usize,
        queue: usize,
        opts: LiveOptions,
    ) -> (Vec<ControlEvent>, Vec<ConnReport>) {
        let mut live = server.live(n, queue, opts).unwrap();
        let events: Vec<ControlEvent> = live.take_merge().collect();
        let reports = live.finish();
        (events, reports)
    }

    #[test]
    fn split_capture_confines_timestamp_runs_to_one_stream() {
        // Ties at 10 and 30 must each land whole on a single stream.
        let log: ControllerLog = vec![
            ev(10, 0),
            ev(10, 1),
            ev(20, 2),
            ev(30, 3),
            ev(30, 4),
            ev(30, 5),
            ev(40, 6),
        ]
        .into_iter()
        .collect();
        let parts = split_capture(&log, 3);
        assert_eq!(parts.iter().map(ControllerLog::len).sum::<usize>(), 7);
        for part in &parts {
            for w in part.events().windows(2) {
                assert!(w[0].ts <= w[1].ts, "streams stay time-ordered");
            }
        }
        for ts in [10u64, 30] {
            let holders = parts
                .iter()
                .filter(|p| p.events().iter().any(|e| e.ts.as_micros() == ts))
                .count();
            assert_eq!(holders, 1, "run at {ts}µs must not straddle streams");
        }
    }

    #[test]
    fn merge_of_split_streams_restores_capture_order() {
        let log: ControllerLog = (0..100u64).map(|i| ev(10 + i / 3, i as u32)).collect();
        for n in [1usize, 2, 4, 7] {
            let parts = split_capture(&log, n);
            // Feed the merge through real channels, pre-loaded.
            let mut rxs = Vec::new();
            for part in &parts {
                let (tx, rx) = sync_channel(200);
                for e in part.events() {
                    tx.send(e.clone()).unwrap();
                }
                drop(tx);
                rxs.push(rx);
            }
            let merged: Vec<ControlEvent> = EventMerge::new(rxs, None).collect();
            assert_eq!(merged, log.events().to_vec(), "{n} streams");
        }
    }

    #[test]
    fn merge_waives_a_stalled_stream_within_the_budget() {
        // Stream 0 delivers everything; stream 1 stays silent. With a
        // stall budget the merge must release stream 0's events within
        // roughly the budget instead of blocking forever.
        let (tx0, rx0) = sync_channel(16);
        let (tx1, rx1) = sync_channel::<ControlEvent>(16);
        for i in 0..4u64 {
            tx0.send(ev(100 + i, i as u32)).unwrap();
        }
        drop(tx0);
        let budget = Duration::from_millis(100);
        let mut merge = EventMerge::new(vec![rx0, rx1], Some(budget));
        let t0 = Instant::now();
        let first = merge.next().expect("stream 0's events must release");
        assert!(
            t0.elapsed() < budget + Duration::from_millis(400),
            "first release came {}ms after start, budget {}ms",
            t0.elapsed().as_millis(),
            budget.as_millis()
        );
        assert_eq!(first.ts.as_micros(), 100);
        // The rest release without further stall waits.
        let rest: Vec<u64> = (0..3)
            .map(|_| merge.next().unwrap().ts.as_micros())
            .collect();
        assert_eq!(rest, vec![101, 102, 103]);
        drop(tx1);
        assert!(merge.next().is_none());
    }

    #[test]
    fn merge_revives_a_waived_stream_and_keeps_per_stream_order() {
        let (tx0, rx0) = sync_channel(16);
        let (tx1, rx1) = sync_channel(16);
        for i in 0..3u64 {
            tx0.send(ev(200 + i, i as u32)).unwrap();
        }
        drop(tx0);
        let mut merge = EventMerge::new(vec![rx0, rx1], Some(Duration::from_millis(50)));
        // Stream 1 silent: stream 0 releases past it.
        assert_eq!(merge.next().unwrap().ts.as_micros(), 200);
        assert_eq!(merge.next().unwrap().ts.as_micros(), 201);
        // Stream 1 revives with *older* events — they still come out in
        // stream order, re-sequencing left to the downstream slack.
        tx1.send(ev(150, 10)).unwrap();
        tx1.send(ev(151, 11)).unwrap();
        drop(tx1);
        let rest: Vec<u64> = merge.by_ref().map(|e| e.ts.as_micros()).collect();
        assert_eq!(rest, vec![150, 151, 202]);
    }

    #[test]
    fn loopback_roundtrip_single_publisher() {
        let log: ControllerLog = (0..50u64).map(|i| ev(100 + i, i as u32)).collect();
        let server = IngestServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let publisher = std::thread::spawn({
            let log = log.clone();
            move || publish_capture(addr, &log, None).unwrap()
        });
        let (events, reports) = live_collect(&server, 1, 16, LiveOptions::default());
        let sent = publisher.join().unwrap();
        assert_eq!(events, log.events().to_vec());
        assert_eq!(reports.len(), 1);
        assert!(reports[0].handshake_ok);
        assert_eq!(reports[0].events, 50);
        assert_eq!(reports[0].bytes_read, sent.bytes_sent);
        assert_eq!(reports[0].stats.frames_decoded, 50);
        assert_eq!(reports[0].stats.frames_skipped, 0);
        assert_eq!(reports[0].cause, Some(DisconnectCause::CleanEof));
        assert_eq!(reports[0].state, ConnState::Ended);
    }

    #[test]
    fn handshake_failure_is_reported_not_fatal() {
        let server = IngestServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let publisher = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"HTTP/1.1 GET / please").unwrap();
        });
        let (events, reports) = live_collect(&server, 1, 16, LiveOptions::default());
        publisher.join().unwrap();
        assert!(events.is_empty());
        assert!(!reports[0].handshake_ok);
        assert!(matches!(reports[0].first_errors[0], DecodeError::BadMagic));
        assert_eq!(reports[0].cause, Some(DisconnectCause::HandshakeFailed));
        assert_eq!(reports[0].state, ConnState::Failed);
    }

    #[test]
    fn session_roundtrip_and_clean_end() {
        let log: ControllerLog = (0..80u64).map(|i| ev(100 + i, i as u32)).collect();
        let server = IngestServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let publisher = std::thread::spawn({
            let log = log.clone();
            move || {
                publish_session(
                    addr,
                    &log,
                    &SessionOptions {
                        session: 7,
                        ..SessionOptions::default()
                    },
                )
                .unwrap()
            }
        });
        let (events, reports) = live_collect(&server, 1, 16, LiveOptions::default());
        let sent = publisher.join().unwrap();
        assert_eq!(events, log.events().to_vec());
        assert_eq!(sent.connects, 1);
        assert_eq!(sent.resumes, 0);
        let r = &reports[0];
        assert!(r.handshake_ok);
        assert_eq!(r.session, Some(7));
        assert_eq!(r.events, 80);
        assert_eq!(r.connects, 1);
        assert_eq!(r.resumes, 0);
        assert_eq!(r.cause, Some(DisconnectCause::SessionEnd));
        assert_eq!(r.state, ConnState::Ended);
        assert_eq!(r.bytes_read, sent.bytes_sent);
    }

    #[test]
    fn session_flap_resumes_from_watermark_without_loss_or_duplication() {
        let log: ControllerLog = (0..200u64).map(|i| ev(100 + i, i as u32)).collect();
        let server = IngestServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let plan = ConnPlan::at(vec![
            (60, ConnFault::Disconnect),
            (140, ConnFault::Disconnect),
        ]);
        let publisher = std::thread::spawn({
            let log = log.clone();
            move || {
                publish_session(
                    addr,
                    &log,
                    &SessionOptions {
                        session: 99,
                        retry_budget: 2,
                        backoff_us: 1_000,
                        plan: Some(plan),
                    },
                )
                .unwrap()
            }
        });
        let (events, reports) = live_collect(&server, 1, 16, LiveOptions::default());
        let sent = publisher.join().unwrap();
        assert_eq!(
            events,
            log.events().to_vec(),
            "resume must lose nothing and duplicate nothing"
        );
        assert_eq!(sent.connects, 3, "1 connect + 2 flap reconnects");
        assert_eq!(sent.resumes, 2);
        assert_eq!(sent.faults, 2);
        let r = &reports[0];
        assert_eq!(r.events, 200);
        assert_eq!(r.connects, 3);
        assert_eq!(r.resumes, 2);
        assert_eq!(r.disconnects, 2, "both flaps counted as abrupt losses");
        assert_eq!(r.cause, Some(DisconnectCause::SessionEnd));
        assert_eq!(r.state, ConnState::Ended);
    }

    #[test]
    fn publisher_retries_connect_with_backoff_until_server_appears() {
        // Reserve a port, drop the listener, and only bind the real
        // server after a delay: the publisher's first connects fail and
        // the retry budget must carry it through.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let log: ControllerLog = (0..30u64).map(|i| ev(100 + i, i as u32)).collect();
        let publisher = std::thread::spawn({
            let log = log.clone();
            move || {
                publish_session(
                    addr,
                    &log,
                    &SessionOptions {
                        session: 5,
                        retry_budget: 50,
                        backoff_us: 20_000,
                        plan: None,
                    },
                )
            }
        });
        std::thread::sleep(Duration::from_millis(150));
        let server = IngestServer::bind(addr).unwrap();
        let (events, _) = live_collect(&server, 1, 16, LiveOptions::default());
        let sent = publisher.join().unwrap().expect("retries must succeed");
        assert_eq!(events.len(), 30);
        assert!(sent.retries >= 1, "at least one connect failed first");
    }

    #[test]
    fn dead_but_open_socket_is_reaped_and_stream_completes() {
        // A publisher that connects, sends half a capture, then hangs
        // forever with the socket open: with a heartbeat horizon the
        // server must kill the connection and (with no resume coming)
        // retire the session so the run can end.
        let log: ControllerLog = (0..40u64).map(|i| ev(100 + i, i as u32)).collect();
        let server = IngestServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let bytes = log.to_wire_bytes();
        let half = bytes.len() / 2;
        let _publisher = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&bytes[..half]).unwrap();
            s.flush().unwrap();
            // Hang. The server kills us; keep the socket alive until
            // then.
            std::thread::sleep(Duration::from_secs(10));
        });
        let opts = LiveOptions {
            stall_timeout_us: 20_000,
            heartbeat_us: 30_000,
        };
        let t0 = Instant::now();
        let (events, reports) = live_collect(&server, 1, 16, opts);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "reap must end the run long before the publisher wakes"
        );
        assert!(!events.is_empty(), "the half-capture's events came through");
        assert!(events.len() < 40);
        let r = &reports[0];
        assert_eq!(r.cause, Some(DisconnectCause::IdleTimeout));
        assert!(r.disconnects >= 1);
    }
}
