//! The reactive OpenFlow controller model.
//!
//! Routing: latency-weighted shortest path over the switch fabric, like
//! NOX's routing application. Timing: a single-server queue — each
//! `PacketIn` occupies the controller for a sampled service time, and
//! requests that arrive while it is busy queue up. This reproduces both
//! the controller response time (CRT) signature and the overload behavior
//! FlowDiff flags (Figure 2(b), "controller overhead").

use openflow::types::Timestamp;
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::SimConfig;
use crate::topology::{NodeId, Topology};

/// The controller's timing and routing model.
#[derive(Debug, Clone)]
pub struct ControllerModel {
    service_us: u64,
    jitter_us: u64,
    /// Service-time multiplier; raised by the controller-overload fault.
    pub degradation: f64,
    busy_until: Timestamp,
    handled: u64,
}

impl ControllerModel {
    /// Creates a controller with timing from `config`.
    pub fn new(config: &SimConfig) -> ControllerModel {
        ControllerModel {
            service_us: config.controller_service_us,
            jitter_us: config.controller_jitter_us,
            degradation: 1.0,
            busy_until: Timestamp::ZERO,
            handled: 0,
        }
    }

    /// Total `PacketIn` messages processed so far.
    pub fn handled(&self) -> u64 {
        self.handled
    }

    /// Computes the response latency for a `PacketIn` arriving at
    /// `arrival`: queueing delay (if the controller is busy) plus a
    /// sampled service time.
    pub fn response_delay(&mut self, arrival: Timestamp, rng: &mut StdRng) -> u64 {
        let jitter = if self.jitter_us > 0 {
            rng.gen_range(0..=self.jitter_us)
        } else {
            0
        };
        let service = ((self.service_us + jitter) as f64 * self.degradation) as u64;
        let start = self.busy_until.max(arrival);
        self.busy_until = start + service;
        self.handled += 1;
        self.busy_until - arrival
    }

    /// Routes a flow from `src` host to `dst` host, avoiding failed
    /// switches. Returns the full node path including both hosts.
    pub fn route(
        &self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        is_failed: impl Fn(NodeId) -> bool,
    ) -> Option<Vec<NodeId>> {
        topo.shortest_path(src, dst, is_failed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn idle_controller_responds_in_service_time() {
        let cfg = SimConfig {
            controller_service_us: 100,
            controller_jitter_us: 0,
            ..SimConfig::default()
        };
        let mut c = ControllerModel::new(&cfg);
        let d = c.response_delay(Timestamp::from_secs(1), &mut rng());
        assert_eq!(d, 100);
        assert_eq!(c.handled(), 1);
    }

    #[test]
    fn burst_arrivals_queue_up() {
        let cfg = SimConfig {
            controller_service_us: 100,
            controller_jitter_us: 0,
            ..SimConfig::default()
        };
        let mut c = ControllerModel::new(&cfg);
        let t = Timestamp::from_secs(1);
        // three requests at the same instant: 100, 200, 300 us responses
        assert_eq!(c.response_delay(t, &mut rng()), 100);
        assert_eq!(c.response_delay(t, &mut rng()), 200);
        assert_eq!(c.response_delay(t, &mut rng()), 300);
        // after the queue drains, responses return to service time
        let later = t + 10_000;
        assert_eq!(c.response_delay(later, &mut rng()), 100);
    }

    #[test]
    fn degradation_scales_service_time() {
        let cfg = SimConfig {
            controller_service_us: 100,
            controller_jitter_us: 0,
            ..SimConfig::default()
        };
        let mut c = ControllerModel::new(&cfg);
        c.degradation = 5.0;
        assert_eq!(c.response_delay(Timestamp::from_secs(1), &mut rng()), 500);
    }

    #[test]
    fn route_avoids_failed_switch() {
        let mut t = Topology::new();
        let h1 = t.add_host("h1", Ipv4Addr::new(10, 0, 0, 1));
        let h2 = t.add_host("h2", Ipv4Addr::new(10, 0, 0, 2));
        let s1 = t.add_of_switch("s1");
        let s2 = t.add_of_switch("s2");
        let s3 = t.add_of_switch("s3");
        t.connect(h1, s1, 1, 1);
        t.connect(s1, s2, 1, 1);
        t.connect(s1, s3, 1, 1);
        t.connect(s2, h2, 1, 1);
        t.connect(s3, h2, 1, 1);
        let c = ControllerModel::new(&SimConfig::default());
        let p = c.route(&t, h1, h2, |n| n == s2).unwrap();
        assert!(p.contains(&s3));
        assert!(!p.contains(&s2));
    }
}
