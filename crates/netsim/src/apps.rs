//! The application-logic extension point.
//!
//! Simulated multi-tier applications react to flow deliveries: a request
//! arriving at a web server triggers a flow to an application server after
//! a processing delay, and so on. The engine invokes every registered
//! [`AppLogic`] when a flow's first packet reaches its destination host;
//! the logic responds by scheduling dependent flows through [`AppCtx`].

use openflow::types::Timestamp;
use rand::rngs::StdRng;

use crate::flows::{DeliveredFlow, FlowSpec};
use crate::topology::{NodeId, Topology};

/// Application behavior attached to a simulation.
pub trait AppLogic {
    /// Called when a flow's first packet reaches its destination host.
    ///
    /// Implementations typically check whether `flow.dst` is one of their
    /// nodes and, if so, schedule dependent flows via
    /// [`AppCtx::schedule_flow_after`].
    fn on_flow_delivered(&mut self, flow: &DeliveredFlow, ctx: &mut AppCtx<'_>);
}

/// The engine facilities available to application logic during a delivery
/// callback.
pub struct AppCtx<'a> {
    pub(crate) now: Timestamp,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) topo: &'a Topology,
    /// Extra processing delay of the host handling the request
    /// (fault-injected slowdown), microseconds.
    pub(crate) host_slowdown_us: u64,
    pub(crate) queued: Vec<(Timestamp, FlowSpec)>,
}

impl<'a> AppCtx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// The deterministic simulation RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// The topology, for resolving hosts.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// Fault-injected extra processing delay of the delivering host,
    /// microseconds. The engine also adds this to every flow scheduled
    /// from this context, so most logic can ignore it.
    pub fn host_slowdown_us(&self) -> u64 {
        self.host_slowdown_us
    }

    /// Schedules a dependent flow `delay_us` after now. The
    /// fault-injected slowdown of the handling host is added
    /// automatically, so application code only models its intrinsic
    /// processing time.
    pub fn schedule_flow_after(&mut self, delay_us: u64, spec: FlowSpec) {
        let at = self.now + delay_us + self.host_slowdown_us;
        self.queued.push((at, spec));
    }

    /// Resolves a host node by name.
    pub fn host_by_name(&self, name: &str) -> Option<NodeId> {
        self.topo.node_by_name(name)
    }
}
