//! Simulation parameters.

use serde::{Deserialize, Serialize};

/// How forwarding rules get installed (Section VI of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Deployment {
    /// Reactive microflow rules: every new flow triggers a `PacketIn`
    /// at every on-path switch — maximum visibility (the paper's main
    /// mode and the default).
    Reactive,
    /// Reactive *wildcard* rules covering a destination prefix: the
    /// first flow to a prefix triggers control traffic, subsequent
    /// flows to the same prefix are invisible. Trades control-plane
    /// load for measurement granularity.
    Wildcard {
        /// Prefix length of installed rules (e.g. 24 for /24).
        prefix_len: u32,
    },
    /// Rules installed proactively: no table misses, hence no
    /// `PacketIn`/`FlowRemoved` traffic at all. FlowDiff is blind to
    /// applications in this mode (only echo liveness remains).
    Proactive,
}

/// Tunable parameters of the simulated data center.
///
/// The defaults reflect the paper's reactive OpenFlow deployment: per-flow
/// (microflow) rules with a 5-second soft timeout and no hard timeout,
/// sub-millisecond control channel and controller service times, and
/// 1500-byte packets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Idle (soft) timeout installed on reactive flow entries, seconds.
    pub idle_timeout_s: u16,
    /// Hard timeout installed on reactive flow entries, seconds (0 = none).
    pub hard_timeout_s: u16,
    /// One-way control channel latency between a switch and the
    /// controller, microseconds.
    pub control_latency_us: u64,
    /// Uniform jitter added to the control channel latency, microseconds.
    pub control_jitter_us: u64,
    /// Mean controller service time per `PacketIn`, microseconds.
    pub controller_service_us: u64,
    /// Uniform jitter on the controller service time, microseconds.
    pub controller_jitter_us: u64,
    /// Switch forwarding (pipeline) delay per hop, microseconds.
    pub switch_proc_us: u64,
    /// Average packet size used to convert flow bytes to packets, bytes.
    pub packet_size: u64,
    /// Bytes of each frame forwarded to the controller in `PacketIn`.
    pub miss_send_len: u16,
    /// TCP retransmission timeout charged per first-packet loss,
    /// microseconds.
    pub rto_us: u64,
    /// When true, switches request `FlowRemoved` notifications (required
    /// for flow statistics).
    pub notify_flow_removed: bool,
    /// Echo keepalive period per switch, seconds (0 disables). Echo
    /// replies are the controller's switch-liveness signal.
    pub echo_interval_s: u64,
    /// Rule-installation strategy (Section VI deployment modes).
    pub deployment: Deployment,
    /// Port-statistics polling period, seconds (0 disables). The
    /// controller polls per-port byte counters, giving FlowDiff its
    /// link-utilization baseline (Section III-C).
    pub stats_poll_interval_s: u64,
    /// Flow-table capacity per switch (`None` = unbounded). When a
    /// reactive add overflows the TCAM the switch reports
    /// `OFPET_FLOW_MOD_FAILED` and the flow runs ruleless — every later
    /// flow with the same destiny misses again (switch-overhead mode of
    /// Figure 2(b)).
    pub flow_table_capacity: Option<usize>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            idle_timeout_s: 5,
            hard_timeout_s: 0,
            control_latency_us: 500,
            control_jitter_us: 100,
            controller_service_us: 150,
            controller_jitter_us: 50,
            switch_proc_us: 25,
            packet_size: 1500,
            miss_send_len: 128,
            rto_us: 200_000,
            notify_flow_removed: true,
            echo_interval_s: 5,
            deployment: Deployment::Reactive,
            stats_poll_interval_s: 10,
            flow_table_capacity: None,
        }
    }
}

impl SimConfig {
    /// Number of packets a flow of `bytes` bytes occupies.
    pub fn packets_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.packet_size).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_reactive() {
        let c = SimConfig::default();
        assert_eq!(c.idle_timeout_s, 5);
        assert_eq!(c.hard_timeout_s, 0);
        assert!(c.notify_flow_removed);
        assert_eq!(c.deployment, Deployment::Reactive);
    }

    #[test]
    fn packets_round_up_and_never_zero() {
        let c = SimConfig::default();
        assert_eq!(c.packets_for(0), 1);
        assert_eq!(c.packets_for(1), 1);
        assert_eq!(c.packets_for(1500), 1);
        assert_eq!(c.packets_for(1501), 2);
        assert_eq!(c.packets_for(15_000), 10);
    }
}
