//! Fault injection.
//!
//! Reproduces the seven operational problems of Table I plus the
//! additional problem classes of Figure 2(b): each fault perturbs a
//! specific mechanism of the simulator, and FlowDiff must recover the
//! perturbation purely from the control-traffic log.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::topology::{LinkId, NodeId};

/// A fault to inject at a point in simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// Packet loss on a link (Table I #2, emulating `tc`): inflates byte
    /// counts via retransmissions and delays delivery.
    LinkLoss {
        /// The lossy link.
        link: LinkId,
        /// Loss probability per packet in `[0, 1]`.
        rate: f64,
    },
    /// Extra request-processing latency on a host, e.g. debug ("INFO")
    /// logging enabled by misconfiguration (Table I #1).
    HostSlowdown {
        /// The slowed host.
        host: NodeId,
        /// Extra per-request processing delay, microseconds.
        extra_us: u64,
    },
    /// A host or VM goes down entirely (Table I #5): originates nothing,
    /// answers nothing.
    HostDown {
        /// The dead host.
        host: NodeId,
    },
    /// An application on `host` listening on `port` crashes (Table I #4):
    /// requests still reach the host but trigger no processing.
    AppCrash {
        /// Host running the application.
        host: NodeId,
        /// Crashed service port.
        port: u16,
    },
    /// A firewall silently drops traffic to `host:port` (Table I #6).
    PortBlock {
        /// Protected host.
        host: NodeId,
        /// Blocked destination port.
        port: u16,
    },
    /// An OpenFlow switch fails (Figure 2(b), "switch failure"): flows
    /// are re-routed around it; in-flight packets die.
    SwitchFailure {
        /// The failed switch.
        switch: NodeId,
    },
    /// The controller becomes slow (Figure 2(b), "controller overhead"):
    /// service time multiplied by `factor`.
    ControllerOverload {
        /// Service-time multiplier (> 1).
        factor: f64,
    },
    /// The controller crashes (Figure 2(b), "controller failure"):
    /// `PacketIn` messages go unanswered, so new flows stall and die.
    ControllerDown,
    /// Clears a previously injected fault of the same shape (used to
    /// model transient problems).
    Clear(Box<Fault>),
}

/// The set of currently active faults, consulted by the engine on every
/// relevant decision.
#[derive(Debug, Clone, Default)]
pub struct ActiveFaults {
    link_loss: HashMap<LinkId, f64>,
    host_slowdown: HashMap<NodeId, u64>,
    hosts_down: HashSet<NodeId>,
    crashed_apps: HashSet<(NodeId, u16)>,
    blocked_ports: HashSet<(NodeId, u16)>,
    failed_switches: HashSet<NodeId>,
    controller_factor: f64,
    controller_down: bool,
}

impl ActiveFaults {
    /// No faults active.
    pub fn new() -> ActiveFaults {
        ActiveFaults {
            controller_factor: 1.0,
            ..ActiveFaults::default()
        }
    }

    /// Applies (or clears) a fault.
    pub fn apply(&mut self, fault: &Fault) {
        match fault {
            Fault::LinkLoss { link, rate } => {
                self.link_loss.insert(*link, rate.clamp(0.0, 1.0));
            }
            Fault::HostSlowdown { host, extra_us } => {
                self.host_slowdown.insert(*host, *extra_us);
            }
            Fault::HostDown { host } => {
                self.hosts_down.insert(*host);
            }
            Fault::AppCrash { host, port } => {
                self.crashed_apps.insert((*host, *port));
            }
            Fault::PortBlock { host, port } => {
                self.blocked_ports.insert((*host, *port));
            }
            Fault::SwitchFailure { switch } => {
                self.failed_switches.insert(*switch);
            }
            Fault::ControllerOverload { factor } => {
                self.controller_factor = factor.max(1.0);
            }
            Fault::ControllerDown => {
                self.controller_down = true;
            }
            Fault::Clear(inner) => self.clear(inner),
        }
    }

    fn clear(&mut self, fault: &Fault) {
        match fault {
            Fault::LinkLoss { link, .. } => {
                self.link_loss.remove(link);
            }
            Fault::HostSlowdown { host, .. } => {
                self.host_slowdown.remove(host);
            }
            Fault::HostDown { host } => {
                self.hosts_down.remove(host);
            }
            Fault::AppCrash { host, port } => {
                self.crashed_apps.remove(&(*host, *port));
            }
            Fault::PortBlock { host, port } => {
                self.blocked_ports.remove(&(*host, *port));
            }
            Fault::SwitchFailure { switch } => {
                self.failed_switches.remove(switch);
            }
            Fault::ControllerOverload { .. } => {
                self.controller_factor = 1.0;
            }
            Fault::ControllerDown => {
                self.controller_down = false;
            }
            Fault::Clear(inner) => self.apply(inner),
        }
    }

    /// Loss rate of a link (0.0 when healthy).
    pub fn loss_on(&self, link: LinkId) -> f64 {
        self.link_loss.get(&link).copied().unwrap_or(0.0)
    }

    /// Extra processing delay on a host, microseconds.
    pub fn slowdown_of(&self, host: NodeId) -> u64 {
        self.host_slowdown.get(&host).copied().unwrap_or(0)
    }

    /// True when the host is down.
    pub fn is_host_down(&self, host: NodeId) -> bool {
        self.hosts_down.contains(&host)
    }

    /// True when the application at `host:port` is crashed or firewalled.
    pub fn is_service_dead(&self, host: NodeId, port: u16) -> bool {
        self.crashed_apps.contains(&(host, port)) || self.blocked_ports.contains(&(host, port))
    }

    /// True when the switch is failed.
    pub fn is_switch_failed(&self, switch: NodeId) -> bool {
        self.failed_switches.contains(&switch)
    }

    /// Current controller service-time multiplier.
    pub fn controller_factor(&self) -> f64 {
        self.controller_factor
    }

    /// True when the controller is down.
    pub fn is_controller_down(&self) -> bool {
        self.controller_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_and_clear_roundtrip() {
        let mut f = ActiveFaults::new();
        let fault = Fault::LinkLoss {
            link: LinkId(3),
            rate: 0.01,
        };
        f.apply(&fault);
        assert!((f.loss_on(LinkId(3)) - 0.01).abs() < 1e-12);
        f.apply(&Fault::Clear(Box::new(fault)));
        assert_eq!(f.loss_on(LinkId(3)), 0.0);
    }

    #[test]
    fn loss_rate_is_clamped() {
        let mut f = ActiveFaults::new();
        f.apply(&Fault::LinkLoss {
            link: LinkId(0),
            rate: 7.0,
        });
        assert_eq!(f.loss_on(LinkId(0)), 1.0);
    }

    #[test]
    fn service_dead_covers_crash_and_firewall() {
        let mut f = ActiveFaults::new();
        f.apply(&Fault::AppCrash {
            host: NodeId(1),
            port: 8080,
        });
        f.apply(&Fault::PortBlock {
            host: NodeId(2),
            port: 3306,
        });
        assert!(f.is_service_dead(NodeId(1), 8080));
        assert!(f.is_service_dead(NodeId(2), 3306));
        assert!(!f.is_service_dead(NodeId(1), 80));
        assert!(!f.is_service_dead(NodeId(3), 8080));
    }

    #[test]
    fn controller_factor_floor_is_one() {
        let mut f = ActiveFaults::new();
        assert_eq!(f.controller_factor(), 1.0);
        f.apply(&Fault::ControllerOverload { factor: 0.1 });
        assert_eq!(f.controller_factor(), 1.0);
        f.apply(&Fault::ControllerOverload { factor: 12.0 });
        assert_eq!(f.controller_factor(), 12.0);
        f.apply(&Fault::Clear(Box::new(Fault::ControllerOverload {
            factor: 12.0,
        })));
        assert_eq!(f.controller_factor(), 1.0);
    }

    #[test]
    fn controller_down_toggles() {
        let mut f = ActiveFaults::new();
        assert!(!f.is_controller_down());
        f.apply(&Fault::ControllerDown);
        assert!(f.is_controller_down());
        f.apply(&Fault::Clear(Box::new(Fault::ControllerDown)));
        assert!(!f.is_controller_down());
    }

    #[test]
    fn double_clear_is_idempotent() {
        let mut f = ActiveFaults::new();
        let fault = Fault::HostDown { host: NodeId(5) };
        f.apply(&Fault::Clear(Box::new(fault.clone())));
        assert!(!f.is_host_down(NodeId(5)));
        f.apply(&fault);
        assert!(f.is_host_down(NodeId(5)));
    }
}
