//! Fault injection.
//!
//! Reproduces the seven operational problems of Table I plus the
//! additional problem classes of Figure 2(b): each fault perturbs a
//! specific mechanism of the simulator, and FlowDiff must recover the
//! perturbation purely from the control-traffic log.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::log::{encode_event, ControllerLog, CAPTURE_MAGIC};
use crate::topology::{LinkId, NodeId};

/// A fault to inject at a point in simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// Packet loss on a link (Table I #2, emulating `tc`): inflates byte
    /// counts via retransmissions and delays delivery.
    LinkLoss {
        /// The lossy link.
        link: LinkId,
        /// Loss probability per packet in `[0, 1]`.
        rate: f64,
    },
    /// Extra request-processing latency on a host, e.g. debug ("INFO")
    /// logging enabled by misconfiguration (Table I #1).
    HostSlowdown {
        /// The slowed host.
        host: NodeId,
        /// Extra per-request processing delay, microseconds.
        extra_us: u64,
    },
    /// A host or VM goes down entirely (Table I #5): originates nothing,
    /// answers nothing.
    HostDown {
        /// The dead host.
        host: NodeId,
    },
    /// An application on `host` listening on `port` crashes (Table I #4):
    /// requests still reach the host but trigger no processing.
    AppCrash {
        /// Host running the application.
        host: NodeId,
        /// Crashed service port.
        port: u16,
    },
    /// A firewall silently drops traffic to `host:port` (Table I #6).
    PortBlock {
        /// Protected host.
        host: NodeId,
        /// Blocked destination port.
        port: u16,
    },
    /// An OpenFlow switch fails (Figure 2(b), "switch failure"): flows
    /// are re-routed around it; in-flight packets die.
    SwitchFailure {
        /// The failed switch.
        switch: NodeId,
    },
    /// The controller becomes slow (Figure 2(b), "controller overhead"):
    /// service time multiplied by `factor`.
    ControllerOverload {
        /// Service-time multiplier (> 1).
        factor: f64,
    },
    /// The controller crashes (Figure 2(b), "controller failure"):
    /// `PacketIn` messages go unanswered, so new flows stall and die.
    ControllerDown,
    /// Clears a previously injected fault of the same shape (used to
    /// model transient problems).
    Clear(Box<Fault>),
}

/// The set of currently active faults, consulted by the engine on every
/// relevant decision.
#[derive(Debug, Clone, Default)]
pub struct ActiveFaults {
    link_loss: HashMap<LinkId, f64>,
    host_slowdown: HashMap<NodeId, u64>,
    hosts_down: HashSet<NodeId>,
    crashed_apps: HashSet<(NodeId, u16)>,
    blocked_ports: HashSet<(NodeId, u16)>,
    failed_switches: HashSet<NodeId>,
    controller_factor: f64,
    controller_down: bool,
}

impl ActiveFaults {
    /// No faults active.
    pub fn new() -> ActiveFaults {
        ActiveFaults {
            controller_factor: 1.0,
            ..ActiveFaults::default()
        }
    }

    /// Applies (or clears) a fault.
    pub fn apply(&mut self, fault: &Fault) {
        match fault {
            Fault::LinkLoss { link, rate } => {
                self.link_loss.insert(*link, rate.clamp(0.0, 1.0));
            }
            Fault::HostSlowdown { host, extra_us } => {
                self.host_slowdown.insert(*host, *extra_us);
            }
            Fault::HostDown { host } => {
                self.hosts_down.insert(*host);
            }
            Fault::AppCrash { host, port } => {
                self.crashed_apps.insert((*host, *port));
            }
            Fault::PortBlock { host, port } => {
                self.blocked_ports.insert((*host, *port));
            }
            Fault::SwitchFailure { switch } => {
                self.failed_switches.insert(*switch);
            }
            Fault::ControllerOverload { factor } => {
                self.controller_factor = factor.max(1.0);
            }
            Fault::ControllerDown => {
                self.controller_down = true;
            }
            Fault::Clear(inner) => self.clear(inner),
        }
    }

    fn clear(&mut self, fault: &Fault) {
        match fault {
            Fault::LinkLoss { link, .. } => {
                self.link_loss.remove(link);
            }
            Fault::HostSlowdown { host, .. } => {
                self.host_slowdown.remove(host);
            }
            Fault::HostDown { host } => {
                self.hosts_down.remove(host);
            }
            Fault::AppCrash { host, port } => {
                self.crashed_apps.remove(&(*host, *port));
            }
            Fault::PortBlock { host, port } => {
                self.blocked_ports.remove(&(*host, *port));
            }
            Fault::SwitchFailure { switch } => {
                self.failed_switches.remove(switch);
            }
            Fault::ControllerOverload { .. } => {
                self.controller_factor = 1.0;
            }
            Fault::ControllerDown => {
                self.controller_down = false;
            }
            Fault::Clear(inner) => self.apply(inner),
        }
    }

    /// Loss rate of a link (0.0 when healthy).
    pub fn loss_on(&self, link: LinkId) -> f64 {
        self.link_loss.get(&link).copied().unwrap_or(0.0)
    }

    /// Extra processing delay on a host, microseconds.
    pub fn slowdown_of(&self, host: NodeId) -> u64 {
        self.host_slowdown.get(&host).copied().unwrap_or(0)
    }

    /// True when the host is down.
    pub fn is_host_down(&self, host: NodeId) -> bool {
        self.hosts_down.contains(&host)
    }

    /// True when the application at `host:port` is crashed or firewalled.
    pub fn is_service_dead(&self, host: NodeId, port: u16) -> bool {
        self.crashed_apps.contains(&(host, port)) || self.blocked_ports.contains(&(host, port))
    }

    /// True when the switch is failed.
    pub fn is_switch_failed(&self, switch: NodeId) -> bool {
        self.failed_switches.contains(&switch)
    }

    /// Current controller service-time multiplier.
    pub fn controller_factor(&self) -> f64 {
        self.controller_factor
    }

    /// True when the controller is down.
    pub fn is_controller_down(&self) -> bool {
        self.controller_down
    }
}

/// A control-channel fault injector: mangles a clean capture into the
/// kind of telemetry a sick tap produces.
///
/// Unlike [`Fault`], which perturbs the *simulated data center*,
/// `ChannelChaos` perturbs the *capture itself* — the wire bytes between
/// the tap and FlowDiff. Each frame independently rolls one of four
/// corruptions (drop, duplicate, truncate, bit flip); on top of that,
/// every switch gets a deterministic clock skew and every frame a
/// bounded serialization jitter, so the mangled capture is also mildly
/// disordered. Everything is seeded: the same chaos config on the same
/// log yields the same bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelChaos {
    /// Probability a frame is dropped entirely.
    pub drop_prob: f64,
    /// Probability a frame is emitted twice back to back.
    pub duplicate_prob: f64,
    /// Probability a frame is cut short mid-bytes.
    pub truncate_prob: f64,
    /// Probability one random bit of a frame is flipped.
    pub bit_flip_prob: f64,
    /// Bound on per-frame serialization jitter, microseconds: each
    /// frame's position in the capture is re-sorted by `ts + U[0, bound]`,
    /// so frames are displaced at most this far in time.
    pub reorder_jitter_us: u64,
    /// Bound on per-switch clock skew, microseconds: each dpid gets a
    /// fixed offset drawn from `[-bound, +bound]` added to all its
    /// timestamps.
    pub clock_skew_us: u64,
    /// RNG seed; drives every roll above.
    pub seed: u64,
}

/// What [`ChannelChaos::mangle`] actually did to a capture — the ground
/// truth a robustness test compares `IngestHealth` counters against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Frames in the clean capture.
    pub total_frames: u64,
    /// Frames dropped.
    pub dropped: u64,
    /// Frames emitted twice.
    pub duplicated: u64,
    /// Frames cut short.
    pub truncated: u64,
    /// Frames with one bit flipped.
    pub bit_flipped: u64,
    /// Frames emitted with a timestamp below an earlier frame's (the
    /// disorder the skew + jitter introduced, as an ingester counts it).
    pub reordered: u64,
}

impl ChannelChaos {
    /// Chaos with `rate` total frame-corruption probability, split
    /// evenly across drop/duplicate/truncate/bit-flip, and no
    /// reorder/skew. The knob the `flowdiff-bench chaos` fidelity sweep
    /// turns.
    pub fn corruption(rate: f64, seed: u64) -> ChannelChaos {
        let p = (rate / 4.0).clamp(0.0, 0.25);
        ChannelChaos {
            drop_prob: p,
            duplicate_prob: p,
            truncate_prob: p,
            bit_flip_prob: p,
            reorder_jitter_us: 0,
            clock_skew_us: 0,
            seed,
        }
    }

    /// Serializes `log` to wire bytes with chaos applied, returning the
    /// mangled capture and the ground-truth tally of what was done.
    pub fn mangle(&self, log: &ControllerLog) -> (Vec<u8>, ChaosReport) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut report = ChaosReport {
            total_frames: log.len() as u64,
            ..ChaosReport::default()
        };

        // Per-switch clock skew, then bounded per-frame jitter on the
        // serialization order.
        let mut skew_of: HashMap<u64, i64> = HashMap::new();
        let mut keyed: Vec<(u64, usize, crate::log::ControlEvent)> = Vec::with_capacity(log.len());
        for (idx, ev) in log.events().iter().enumerate() {
            let mut ev = ev.clone();
            if self.clock_skew_us > 0 {
                let bound = self.clock_skew_us as i64;
                let skew = *skew_of
                    .entry(ev.dpid.0)
                    .or_insert_with(|| rng.gen_range(-bound..=bound));
                ev.ts = openflow::types::Timestamp::from_micros(
                    ev.ts.as_micros().saturating_add_signed(skew),
                );
            }
            let jitter = if self.reorder_jitter_us > 0 {
                rng.gen_range(0..=self.reorder_jitter_us)
            } else {
                0
            };
            keyed.push((ev.ts.as_micros().saturating_add(jitter), idx, ev));
        }
        // Stable by (jittered ts, original index): displacement is
        // bounded by the jitter window, ties keep capture order.
        keyed.sort_by_key(|(key, idx, _)| (*key, *idx));

        let mut out = Vec::with_capacity(32 * log.len() + 8);
        out.extend_from_slice(CAPTURE_MAGIC);
        let mut frame = Vec::new();
        let mut last_emitted_ts: Option<u64> = None;
        for (_, _, ev) in &keyed {
            let roll: f64 = rng.gen();
            let drop_at = self.drop_prob;
            let dup_at = drop_at + self.duplicate_prob;
            let trunc_at = dup_at + self.truncate_prob;
            let flip_at = trunc_at + self.bit_flip_prob;
            if roll < drop_at {
                report.dropped += 1;
                continue;
            }
            frame.clear();
            encode_event(ev, &mut frame);
            if roll < dup_at {
                report.duplicated += 1;
                out.extend_from_slice(&frame);
                out.extend_from_slice(&frame);
            } else if roll < trunc_at {
                report.truncated += 1;
                let cut = rng.gen_range(1..frame.len());
                out.extend_from_slice(&frame[..cut]);
            } else if roll < flip_at {
                report.bit_flipped += 1;
                let byte = rng.gen_range(0..frame.len());
                let bit = rng.gen_range(0u32..8);
                frame[byte] ^= 1 << bit;
                out.extend_from_slice(&frame);
            } else {
                out.extend_from_slice(&frame);
            }
            let ts = ev.ts.as_micros();
            if last_emitted_ts.is_some_and(|prev| ts < prev) {
                report.reordered += 1;
            } else {
                last_emitted_ts = Some(ts);
            }
        }
        (out, report)
    }
}

/// A seeded process-kill schedule for crash-recovery drills: picks a
/// set of epoch indices at which the consumer of a capture should die
/// (panic, `kill -9`, power cut — the drill decides the mechanism).
///
/// Each planned kill fires **once**: [`CrashPlan::take`] consumes the
/// epoch, so a supervisor that restores a checkpoint and replays
/// through the same epoch is not killed again. Everything is seeded —
/// the same `(seed, kills, total_epochs)` yields the same schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashPlan {
    pending: std::collections::BTreeSet<u64>,
    planned: Vec<u64>,
}

impl CrashPlan {
    /// Plans up to `kills` distinct kill epochs drawn uniformly from
    /// `[1, total_epochs)` — epoch 0 is spared so every drill has at
    /// least one clean snapshot before the first death.
    pub fn seeded(seed: u64, kills: usize, total_epochs: u64) -> CrashPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pending = std::collections::BTreeSet::new();
        if total_epochs > 1 {
            let want = kills.min((total_epochs - 1) as usize);
            // Distinct draws; the range is tiny, so rejection converges
            // immediately.
            while pending.len() < want {
                pending.insert(rng.gen_range(1..total_epochs));
            }
        }
        let planned = pending.iter().copied().collect();
        CrashPlan { pending, planned }
    }

    /// Every epoch the plan will (or did) kill at, ascending.
    pub fn kill_epochs(&self) -> &[u64] {
        &self.planned
    }

    /// True when a kill is still scheduled at `epoch`.
    pub fn should_kill(&self, epoch: u64) -> bool {
        self.pending.contains(&epoch)
    }

    /// Consumes the kill scheduled at `epoch`; returns whether one was
    /// pending. Call *before* dying so the post-restore replay of the
    /// same epoch passes through.
    pub fn take(&mut self, epoch: u64) -> bool {
        self.pending.remove(&epoch)
    }

    /// Kills not yet fired.
    pub fn remaining(&self) -> usize {
        self.pending.len()
    }
}

/// One planned connection-level fault, fired by a session publisher at
/// a specific event offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnFault {
    /// Abrupt mid-stream death: flush what is framed, drop the socket
    /// without `End`, reconnect, and resume from the server's
    /// watermark.
    Disconnect,
    /// Write pause with the socket open for `ms` milliseconds — the
    /// healthy-but-wedged publisher the stall budget exists for.
    Stall { ms: u64 },
    /// Slow-loris: the next `events` events drip out in tiny records
    /// instead of full write chunks.
    Trickle { events: u64 },
}

/// A per-connection schedule of [`ConnFault`]s keyed by *events sent*.
/// Each entry fires **once** ([`ConnPlan::fire_at`] consumes it), so a
/// resumed attempt that replays past the same offset is not faulted
/// again — the same one-shot semantics as [`CrashPlan`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConnPlan {
    at: Vec<(u64, ConnFault)>,
}

impl ConnPlan {
    /// A plan from explicit `(events_sent, fault)` pairs.
    pub fn at(mut faults: Vec<(u64, ConnFault)>) -> ConnPlan {
        faults.sort_by_key(|&(idx, _)| idx);
        ConnPlan { at: faults }
    }

    /// The scheduled `(events_sent, fault)` pairs, ascending, not yet
    /// fired.
    pub fn pending(&self) -> &[(u64, ConnFault)] {
        &self.at
    }

    /// True when nothing is left to fire.
    pub fn is_empty(&self) -> bool {
        self.at.is_empty()
    }

    /// Consumes and returns every fault scheduled at exactly `sent`
    /// events.
    pub fn fire_at(&mut self, sent: u64) -> Vec<ConnFault> {
        let mut fired = Vec::new();
        self.at.retain(|&(idx, fault)| {
            if idx == sent {
                fired.push(fault);
                false
            } else {
                true
            }
        });
        fired
    }
}

/// A seeded connection-fault injector — the connection-lifecycle layer
/// over [`ChannelChaos`]'s byte-level mangling. Where `ChannelChaos`
/// corrupts what travels *inside* a connection, `ConnChaos` breaks the
/// connections themselves: mid-stream disconnects (flaps that exercise
/// session resume), write stalls (wedged-but-alive publishers), and
/// slow-loris trickle. Everything is derived from the seed: the same
/// `(ConnChaos, conn, total_events)` always yields the same
/// [`ConnPlan`], so a drill can be replayed bit for bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnChaos {
    /// Mid-stream disconnects per connection.
    pub flaps: usize,
    /// Write stalls per connection.
    pub stalls: usize,
    /// Duration of each stall, milliseconds.
    pub stall_ms: u64,
    /// Slow-loris episodes per connection.
    pub trickles: usize,
    /// Events dripped per trickle episode.
    pub trickle_events: u64,
    /// Master seed; per-connection plans derive from it.
    pub seed: u64,
}

impl ConnChaos {
    /// A flap-only injector: `flaps` seeded mid-stream disconnects per
    /// connection, nothing else.
    pub fn flapping(flaps: usize, seed: u64) -> ConnChaos {
        ConnChaos {
            flaps,
            stalls: 0,
            stall_ms: 0,
            trickles: 0,
            trickle_events: 0,
            seed,
        }
    }

    /// The deterministic fault plan for connection `conn` over a stream
    /// of `total_events` events. Fault offsets are distinct draws from
    /// `[1, total_events)` — never before the first event or after the
    /// last, so every fault lands mid-stream.
    pub fn plan_for(&self, conn: u64, total_events: u64) -> ConnPlan {
        let mut rng = StdRng::seed_from_u64(self.seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let want = self.flaps + self.stalls + self.trickles;
        if total_events < 2 || want == 0 {
            return ConnPlan::default();
        }
        let mut offsets = std::collections::BTreeSet::new();
        let want = want.min((total_events - 1) as usize);
        while offsets.len() < want {
            offsets.insert(rng.gen_range(1..total_events));
        }
        // Deal the drawn offsets to fault kinds in a seeded shuffle so
        // flaps, stalls, and trickles interleave across the stream.
        let mut kinds = Vec::with_capacity(want);
        for _ in 0..self.flaps {
            kinds.push(ConnFault::Disconnect);
        }
        for _ in 0..self.stalls {
            kinds.push(ConnFault::Stall { ms: self.stall_ms });
        }
        for _ in 0..self.trickles {
            kinds.push(ConnFault::Trickle {
                events: self.trickle_events,
            });
        }
        kinds.truncate(want);
        for i in (1..kinds.len()).rev() {
            kinds.swap(i, rng.gen_range(0..=i));
        }
        ConnPlan::at(offsets.into_iter().zip(kinds).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_and_clear_roundtrip() {
        let mut f = ActiveFaults::new();
        let fault = Fault::LinkLoss {
            link: LinkId(3),
            rate: 0.01,
        };
        f.apply(&fault);
        assert!((f.loss_on(LinkId(3)) - 0.01).abs() < 1e-12);
        f.apply(&Fault::Clear(Box::new(fault)));
        assert_eq!(f.loss_on(LinkId(3)), 0.0);
    }

    #[test]
    fn loss_rate_is_clamped() {
        let mut f = ActiveFaults::new();
        f.apply(&Fault::LinkLoss {
            link: LinkId(0),
            rate: 7.0,
        });
        assert_eq!(f.loss_on(LinkId(0)), 1.0);
    }

    #[test]
    fn service_dead_covers_crash_and_firewall() {
        let mut f = ActiveFaults::new();
        f.apply(&Fault::AppCrash {
            host: NodeId(1),
            port: 8080,
        });
        f.apply(&Fault::PortBlock {
            host: NodeId(2),
            port: 3306,
        });
        assert!(f.is_service_dead(NodeId(1), 8080));
        assert!(f.is_service_dead(NodeId(2), 3306));
        assert!(!f.is_service_dead(NodeId(1), 80));
        assert!(!f.is_service_dead(NodeId(3), 8080));
    }

    #[test]
    fn controller_factor_floor_is_one() {
        let mut f = ActiveFaults::new();
        assert_eq!(f.controller_factor(), 1.0);
        f.apply(&Fault::ControllerOverload { factor: 0.1 });
        assert_eq!(f.controller_factor(), 1.0);
        f.apply(&Fault::ControllerOverload { factor: 12.0 });
        assert_eq!(f.controller_factor(), 12.0);
        f.apply(&Fault::Clear(Box::new(Fault::ControllerOverload {
            factor: 12.0,
        })));
        assert_eq!(f.controller_factor(), 1.0);
    }

    #[test]
    fn controller_down_toggles() {
        let mut f = ActiveFaults::new();
        assert!(!f.is_controller_down());
        f.apply(&Fault::ControllerDown);
        assert!(f.is_controller_down());
        f.apply(&Fault::Clear(Box::new(Fault::ControllerDown)));
        assert!(!f.is_controller_down());
    }

    #[test]
    fn double_clear_is_idempotent() {
        let mut f = ActiveFaults::new();
        let fault = Fault::HostDown { host: NodeId(5) };
        f.apply(&Fault::Clear(Box::new(fault.clone())));
        assert!(!f.is_host_down(NodeId(5)));
        f.apply(&fault);
        assert!(f.is_host_down(NodeId(5)));
    }

    mod chaos {
        use super::super::*;
        use crate::log::{ControlEvent, Direction};
        use openflow::match_fields::OfMatch;
        use openflow::messages::{FlowMod, OfpMessage};
        use openflow::types::{DatapathId, Timestamp, Xid};

        fn sample_log(n: u64) -> ControllerLog {
            (0..n)
                .map(|i| ControlEvent {
                    ts: Timestamp::from_micros(1_000 + i * 500),
                    dpid: DatapathId(1 + i % 3),
                    direction: if i % 2 == 0 {
                        Direction::ToController
                    } else {
                        Direction::FromController
                    },
                    xid: Xid(i as u32),
                    msg: if i % 2 == 0 {
                        OfpMessage::Hello
                    } else {
                        OfpMessage::FlowMod(FlowMod::add(OfMatch::any(), 1))
                    },
                })
                .collect()
        }

        #[test]
        fn zero_chaos_is_the_identity() {
            let log = sample_log(40);
            let chaos = ChannelChaos::corruption(0.0, 1);
            let (bytes, report) = chaos.mangle(&log);
            assert_eq!(bytes, log.to_wire_bytes());
            assert_eq!(report.total_frames, 40);
            assert_eq!(
                report.dropped + report.duplicated + report.truncated + report.bit_flipped,
                0
            );
            assert_eq!(report.reordered, 0);
        }

        #[test]
        fn mangle_is_deterministic_per_seed() {
            let log = sample_log(60);
            let chaos = ChannelChaos {
                reorder_jitter_us: 2_000,
                clock_skew_us: 300,
                ..ChannelChaos::corruption(0.2, 7)
            };
            assert_eq!(chaos.mangle(&log), chaos.mangle(&log));
            let other = ChannelChaos { seed: 8, ..chaos };
            assert_ne!(chaos.mangle(&log).0, other.mangle(&log).0);
        }

        #[test]
        fn heavy_corruption_reports_what_it_did() {
            let log = sample_log(200);
            let chaos = ChannelChaos::corruption(0.5, 42);
            let (bytes, report) = chaos.mangle(&log);
            let touched =
                report.dropped + report.duplicated + report.truncated + report.bit_flipped;
            assert!(touched > 0, "0.5 corruption on 200 frames must hit some");
            assert!(touched < 200, "and must leave some intact");
            // The mangled capture still has the magic header and decodes
            // at least the untouched frames.
            let stream = crate::log::LogStream::from_wire_bytes(&bytes).unwrap();
            let decoded = stream.filter(Result::is_ok).count() as u64;
            assert!(decoded >= 200 - touched - report.reordered);
        }

        #[test]
        fn skew_and_jitter_disorder_the_capture() {
            let log = sample_log(120);
            let chaos = ChannelChaos {
                reorder_jitter_us: 5_000,
                clock_skew_us: 2_000,
                ..ChannelChaos::corruption(0.0, 3)
            };
            let (bytes, report) = chaos.mangle(&log);
            assert!(report.reordered > 0, "jitter this large must displace");
            let stream = crate::log::LogStream::from_wire_bytes(&bytes).unwrap();
            let ts: Vec<u64> = stream
                .map(|r| r.expect("no corruption configured").ts.as_micros())
                .collect();
            assert_eq!(ts.len(), 120, "no frame lost to reordering");
            assert!(
                ts.windows(2).any(|w| w[1] < w[0]),
                "decoded capture is actually out of order"
            );
        }
    }

    mod conn_chaos {
        use super::*;

        #[test]
        fn plans_are_deterministic_per_seed_and_conn() {
            let chaos = ConnChaos {
                flaps: 2,
                stalls: 1,
                stall_ms: 40,
                trickles: 1,
                trickle_events: 16,
                seed: 11,
            };
            assert_eq!(chaos.plan_for(0, 500), chaos.plan_for(0, 500));
            assert_ne!(
                chaos.plan_for(0, 500),
                chaos.plan_for(1, 500),
                "connections get distinct plans"
            );
            let other = ConnChaos { seed: 12, ..chaos };
            assert_ne!(chaos.plan_for(0, 500), other.plan_for(0, 500));
            let plan = chaos.plan_for(0, 500);
            assert_eq!(plan.pending().len(), 4);
            assert!(plan.pending().iter().all(|&(i, _)| (1..500).contains(&i)));
            assert!(plan.pending().windows(2).all(|w| w[0].0 < w[1].0));
        }

        #[test]
        fn faults_fire_exactly_once_at_their_offset() {
            let mut plan = ConnPlan::at(vec![
                (10, ConnFault::Disconnect),
                (10, ConnFault::Stall { ms: 5 }),
                (20, ConnFault::Trickle { events: 8 }),
            ]);
            assert!(plan.fire_at(9).is_empty());
            let at10 = plan.fire_at(10);
            assert_eq!(at10.len(), 2);
            assert!(plan.fire_at(10).is_empty(), "one-shot");
            assert_eq!(plan.fire_at(20), vec![ConnFault::Trickle { events: 8 }]);
            assert!(plan.is_empty());
        }

        #[test]
        fn tiny_streams_cap_the_fault_count() {
            let chaos = ConnChaos::flapping(10, 3);
            let plan = chaos.plan_for(0, 3);
            assert_eq!(plan.pending().len(), 2, "only offsets 1 and 2 exist");
            assert!(chaos.plan_for(0, 1).is_empty());
            assert!(ConnChaos::flapping(0, 3).plan_for(0, 100).is_empty());
        }
    }

    mod crash_plan {
        use super::*;

        #[test]
        fn seeded_plans_are_deterministic_and_bounded() {
            let a = CrashPlan::seeded(7, 3, 20);
            let b = CrashPlan::seeded(7, 3, 20);
            assert_eq!(a, b, "same seed, same schedule");
            assert_eq!(a.kill_epochs().len(), 3);
            assert!(a.kill_epochs().iter().all(|&e| (1..20).contains(&e)));
            assert!(a.kill_epochs().windows(2).all(|w| w[0] < w[1]));
            let c = CrashPlan::seeded(8, 3, 20);
            assert_ne!(a, c, "different seed, different schedule");
        }

        #[test]
        fn each_kill_fires_exactly_once() {
            let mut plan = CrashPlan::seeded(1, 2, 10);
            let epoch = plan.kill_epochs()[0];
            assert!(plan.should_kill(epoch));
            assert!(plan.take(epoch), "first pass through the epoch dies");
            assert!(!plan.should_kill(epoch));
            assert!(!plan.take(epoch), "the replay survives it");
            assert_eq!(plan.remaining(), 1);
        }

        #[test]
        fn plan_never_kills_epoch_zero_and_caps_at_available_epochs() {
            let plan = CrashPlan::seeded(5, 50, 4);
            assert_eq!(plan.kill_epochs(), &[1, 2, 3]);
            let empty = CrashPlan::seeded(5, 3, 1);
            assert!(empty.kill_epochs().is_empty());
        }
    }
}
