//! Flow specifications and runtime flow state.

use std::fmt;

use openflow::match_fields::FlowKey;
use openflow::types::Timestamp;
use serde::{Deserialize, Serialize};

use crate::topology::NodeId;

/// Identifier of a flow inside one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(pub u64);

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow#{}", self.0)
    }
}

/// A flow to inject into the network.
///
/// Source and destination hosts are resolved from the key's IP addresses
/// against the topology's host registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// The 5-tuple (and L2 headers) of the flow.
    pub key: FlowKey,
    /// Application payload bytes carried by the flow.
    pub bytes: u64,
    /// Transmission duration once the path is set up, microseconds.
    pub duration_us: u64,
}

impl FlowSpec {
    /// Creates a spec with the given key, size, and duration.
    pub fn new(key: FlowKey, bytes: u64, duration_us: u64) -> FlowSpec {
        FlowSpec {
            key,
            bytes,
            duration_us,
        }
    }
}

/// Lifecycle phase of a flow in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowPhase {
    /// First packet still traversing the path.
    InTransit,
    /// Delivered to the destination host, payload transferring.
    Delivered,
    /// All bytes sent; counters accounted.
    Completed,
    /// Dropped (failed switch, down host, or unreachable destination).
    Dead,
}

/// Notification handed to application logic when a flow's first packet
/// reaches its destination host.
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveredFlow {
    /// The flow's id.
    pub id: FlowId,
    /// The flow's spec.
    pub spec: FlowSpec,
    /// Source host node.
    pub src: NodeId,
    /// Destination host node.
    pub dst: NodeId,
    /// When the flow was injected.
    pub started_at: Timestamp,
    /// When the first packet arrived at `dst`.
    pub delivered_at: Timestamp,
}

/// Internal runtime state of a flow (exposed read-only for inspection and
/// tests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowState {
    /// The spec as injected.
    pub spec: FlowSpec,
    /// Node path: `[src_host, switches.., dst_host]`.
    pub path: Vec<NodeId>,
    /// Injection time.
    pub started_at: Timestamp,
    /// Delivery time of the first packet, once known.
    pub delivered_at: Option<Timestamp>,
    /// Completion time, once known.
    pub completed_at: Option<Timestamp>,
    /// Bytes actually transferred, including loss retransmissions.
    pub wire_bytes: u64,
    /// Packets actually transferred.
    pub wire_packets: u64,
    /// Current phase.
    pub phase: FlowPhase,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn spec_construction() {
        let key = FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            1000,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        );
        let spec = FlowSpec::new(key, 4096, 10_000);
        assert_eq!(spec.bytes, 4096);
        assert_eq!(spec.key.tp_dst, 80);
    }

    #[test]
    fn flow_id_display() {
        assert_eq!(FlowId(9).to_string(), "flow#9");
    }
}
