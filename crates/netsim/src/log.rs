//! The controller-side control-traffic log.
//!
//! This is the *only* interface between the simulated data center and
//! FlowDiff: a time-ordered list of control messages as seen at the
//! controller, exactly what a passive tap on the OpenFlow control channel
//! would capture (Section III-A of the paper).

use bytes::Bytes;
use openflow::messages::OfpMessage;
use openflow::types::{DatapathId, Timestamp, Xid};
use serde::{Deserialize, Serialize};

/// Which way a control message traveled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Switch-to-controller (e.g. `PacketIn`, `FlowRemoved`).
    ToController,
    /// Controller-to-switch (e.g. `FlowMod`, `PacketOut`).
    FromController,
}

/// One captured control message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlEvent {
    /// Controller-side capture timestamp: arrival time for
    /// switch-to-controller messages, send time for controller-to-switch
    /// messages (this is what Figure 3 of the paper assumes).
    pub ts: Timestamp,
    /// The switch this message came from or went to.
    pub dpid: DatapathId,
    /// Message direction.
    pub direction: Direction,
    /// Transaction id; replies echo the request's.
    pub xid: Xid,
    /// The message itself.
    pub msg: OfpMessage,
}

/// A time-ordered capture of control traffic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ControllerLog {
    events: Vec<ControlEvent>,
}

impl ControllerLog {
    /// Creates an empty log.
    pub fn new() -> ControllerLog {
        ControllerLog::default()
    }

    /// Appends an event.
    ///
    /// Events may be pushed slightly out of order by the simulator (it
    /// stamps send and receive times); call [`ControllerLog::finish`] once
    /// when the capture ends to restore time order.
    pub fn push(&mut self, ev: ControlEvent) {
        self.events.push(ev);
    }

    /// Sorts the capture by timestamp (stable, so simultaneous events keep
    /// their generation order).
    pub fn finish(&mut self) {
        self.events.sort_by_key(|e| e.ts);
    }

    /// All events in time order.
    pub fn events(&self) -> &[ControlEvent] {
        &self.events
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The capture's time span, if non-empty.
    pub fn time_range(&self) -> Option<(Timestamp, Timestamp)> {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => Some((a.ts, b.ts)),
            _ => None,
        }
    }

    /// Iterates over `PacketIn` events as `(ts, dpid, xid, &PacketIn)`.
    pub fn packet_ins(
        &self,
    ) -> impl Iterator<Item = (Timestamp, DatapathId, Xid, &openflow::messages::PacketIn)> + '_
    {
        self.events.iter().filter_map(|e| match &e.msg {
            OfpMessage::PacketIn(pi) => Some((e.ts, e.dpid, e.xid, pi)),
            _ => None,
        })
    }

    /// Iterates over `FlowRemoved` events as `(ts, dpid, &FlowRemoved)`.
    pub fn flow_removeds(
        &self,
    ) -> impl Iterator<Item = (Timestamp, DatapathId, &openflow::messages::FlowRemoved)> + '_ {
        self.events.iter().filter_map(|e| match &e.msg {
            OfpMessage::FlowRemoved(fr) => Some((e.ts, e.dpid, fr)),
            _ => None,
        })
    }

    /// Iterates over `FlowMod` events as `(ts, dpid, xid, &FlowMod)`.
    pub fn flow_mods(
        &self,
    ) -> impl Iterator<Item = (Timestamp, DatapathId, Xid, &openflow::messages::FlowMod)> + '_ {
        self.events.iter().filter_map(|e| match &e.msg {
            OfpMessage::FlowMod(fm) => Some((e.ts, e.dpid, e.xid, fm)),
            _ => None,
        })
    }

    /// Returns the sub-log with timestamps in `[from, to)`.
    pub fn slice(&self, from: Timestamp, to: Timestamp) -> ControllerLog {
        ControllerLog {
            events: self
                .events
                .iter()
                .filter(|e| e.ts >= from && e.ts < to)
                .cloned()
                .collect(),
        }
    }

    /// Splits the log into `n` equal-duration segments (used by FlowDiff's
    /// stability analysis).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn split(&self, n: usize) -> Vec<ControllerLog> {
        assert!(n > 0, "cannot split into zero segments");
        let Some((start, end)) = self.time_range() else {
            return vec![ControllerLog::new(); n];
        };
        let span = (end.as_micros() - start.as_micros()).max(1) + 1;
        let step = span.div_ceil(n as u64);
        let mut out = vec![ControllerLog::new(); n];
        for ev in &self.events {
            let idx = ((ev.ts.as_micros() - start.as_micros()) / step) as usize;
            out[idx.min(n - 1)].events.push(ev.clone());
        }
        out
    }
}

/// Magic bytes of the capture file format.
pub const CAPTURE_MAGIC: &[u8; 8] = b"FDIFFCAP";

/// Bytes of the per-event preamble: `[ts: u64][dpid: u64][direction: u8]`.
const PREAMBLE_LEN: usize = 17;

/// Smallest possible frame: the preamble plus the 8-byte OpenFlow header.
const MIN_FRAME_LEN: usize = PREAMBLE_LEN + openflow::wire::HEADER_LEN;

/// Why a point in a wire capture failed to decode.
///
/// Every variant except [`DecodeError::BadMagic`] carries the absolute
/// byte offset of the offending frame, so corruption can be localized in
/// the capture file. A [`LogStream`] reports these as `Err` items and
/// then *resynchronizes* to the next plausible frame boundary —
/// corruption costs the damaged frames, never the rest of the capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The capture does not start with the `FDIFFCAP` magic header.
    BadMagic,
    /// The capture ends mid-frame: fewer bytes remain than the smallest
    /// possible frame (preamble + OpenFlow header).
    TruncatedFrame {
        /// Absolute offset of the truncated frame.
        offset: usize,
        /// Bytes remaining at that offset.
        available: usize,
    },
    /// A tag byte holds a value outside its domain: the capture
    /// direction byte, the OpenFlow version, or the message type code.
    BadEventTag {
        /// Absolute offset of the frame.
        offset: usize,
        /// Which tag was bad.
        field: &'static str,
        /// The offending value.
        value: u64,
    },
    /// The embedded OpenFlow header claims a length shorter than its own
    /// header or extending past the end of the capture.
    LengthOverflow {
        /// Absolute offset of the frame.
        offset: usize,
        /// The claimed message length.
        claimed: usize,
        /// Bytes actually available for the message.
        available: usize,
    },
    /// The framing was sound but the OpenFlow message body failed
    /// structural decoding.
    BadMessage {
        /// Absolute offset of the frame.
        offset: usize,
        /// The underlying protocol decode error.
        source: openflow::error::DecodeError,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a FDIFFCAP capture (bad magic header)"),
            DecodeError::TruncatedFrame { offset, available } => write!(
                f,
                "truncated frame at offset {offset}: {available} bytes left, \
                 at least {MIN_FRAME_LEN} needed"
            ),
            DecodeError::BadEventTag {
                offset,
                field,
                value,
            } => write!(f, "bad {field} tag {value:#x} at offset {offset}"),
            DecodeError::LengthOverflow {
                offset,
                claimed,
                available,
            } => write!(
                f,
                "message length {claimed} at offset {offset} overflows the \
                 {available} bytes available"
            ),
            DecodeError::BadMessage { offset, source } => {
                write!(f, "bad message at offset {offset}: {source}")
            }
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::BadMessage { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Frame-level counters for one [`LogStream`] pass: how much of the
/// capture decoded and how much was discarded while resynchronizing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Frames successfully decoded into events.
    pub frames_decoded: u64,
    /// Corruption sites skipped (one per `Err` item yielded).
    pub frames_skipped: u64,
    /// Bytes discarded while scanning for the next frame boundary.
    pub bytes_skipped: u64,
}

/// Appends one event's wire frame —
/// `[ts: u64][dpid: u64][direction: u8][openflow wire message]`, all
/// integers big-endian — to `out`. This is the per-frame encoder behind
/// [`ControllerLog::to_wire_bytes`], exposed so fault injectors can
/// mangle captures frame by frame.
pub fn encode_event(ev: &ControlEvent, out: &mut Vec<u8>) {
    out.extend_from_slice(&ev.ts.as_micros().to_be_bytes());
    out.extend_from_slice(&ev.dpid.0.to_be_bytes());
    out.push(match ev.direction {
        Direction::ToController => 0,
        Direction::FromController => 1,
    });
    out.extend_from_slice(&openflow::wire::encode(&ev.msg, ev.xid));
}

impl ControllerLog {
    /// Serializes the capture to a self-contained binary format: a magic
    /// header followed by one [`encode_event`] frame per event. Suitable
    /// for writing to disk and re-analyzing later.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 * self.events.len() + 8);
        out.extend_from_slice(CAPTURE_MAGIC);
        for ev in &self.events {
            encode_event(ev, &mut out);
        }
        out
    }

    /// Parses a capture produced by [`ControllerLog::to_wire_bytes`] by
    /// draining a [`LogStream`] (the one decode implementation) into a
    /// fully materialized log. This is the *strict* entry point: any
    /// corruption aborts the parse. Lossy consumers iterate the stream
    /// themselves and count the `Err` items instead.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on a bad magic header, truncation, or
    /// any malformed frame.
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<ControllerLog, DecodeError> {
        let mut log = ControllerLog::new();
        for ev in LogStream::from_wire_bytes(bytes)? {
            log.push(ev?.into_owned());
        }
        log.finish();
        Ok(log)
    }

    /// A pull-based stream over this log's events (no decoding, no
    /// copies).
    pub fn stream(&self) -> LogStream<'_> {
        LogStream::from_log(self)
    }
}

/// A pull-based event stream: the streaming counterpart of a fully
/// materialized [`ControllerLog`].
///
/// Two sources feed it: an in-memory log (borrowed events, zero copies)
/// or a wire capture, which is decoded *lazily* — one event per
/// [`Iterator::next`] call — so an arbitrarily large capture file can be
/// folded into flow records without ever materializing the whole log.
/// Events arrive in capture order, which is time order for any capture
/// written by [`ControllerLog::to_wire_bytes`] (the log sorts on
/// `finish`).
///
/// Corruption does not end the stream: each damaged region yields one
/// `Err` item, after which iteration resumes at the next byte sequence
/// that looks like a frame boundary (valid direction byte, OpenFlow
/// version, known type code, and a claimed length that fits the
/// capture). [`LogStream::stats`] reports how much was decoded vs.
/// skipped.
pub struct LogStream<'a> {
    source: StreamSource<'a>,
    stats: StreamStats,
}

enum StreamSource<'a> {
    Memory(std::slice::Iter<'a, ControlEvent>),
    Wire {
        /// The whole capture, magic header included, so yielded offsets
        /// are absolute file offsets.
        buf: &'a [u8],
        /// Decode cursor; starts just past the magic header.
        pos: usize,
    },
    /// Like `Wire`, but over a shared refcounted buffer: clean
    /// payload-carrying frames borrow their payload from the capture
    /// as zero-copy [`Bytes`] slices instead of copying it out.
    WireShared {
        /// The whole capture, shared with every decoded payload.
        buf: Bytes,
        /// Decode cursor; starts just past the magic header.
        pos: usize,
    },
}

impl<'a> LogStream<'a> {
    /// Streams a materialized log's events (borrowed, in log order).
    pub fn from_log(log: &'a ControllerLog) -> LogStream<'a> {
        LogStream {
            source: StreamSource::Memory(log.events.iter()),
            stats: StreamStats::default(),
        }
    }

    /// Streams a wire capture, validating the magic header up front and
    /// decoding one event per `next` call.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::BadMagic`] when the magic header is
    /// missing or wrong; per-frame decode errors surface as `Err` items
    /// during iteration (followed by resynchronization, not fusing).
    pub fn from_wire_bytes(bytes: &'a [u8]) -> Result<LogStream<'a>, DecodeError> {
        if bytes.len() < CAPTURE_MAGIC.len() || &bytes[..8] != CAPTURE_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        Ok(LogStream {
            source: StreamSource::Wire {
                buf: bytes,
                pos: CAPTURE_MAGIC.len(),
            },
            stats: StreamStats::default(),
        })
    }

    /// Frame-level counters for the bytes consumed so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }
}

impl LogStream<'static> {
    /// Streams a wire capture held in a shared refcounted buffer —
    /// the zero-copy counterpart of [`LogStream::from_wire_bytes`]:
    /// clean payload-carrying frames (`PacketIn`, `PacketOut`, echo,
    /// error) slice their payload out of `capture` without copying,
    /// so decoding a clean capture never materializes an owned
    /// payload. Damaged frames resynchronize exactly as the borrowed
    /// source does.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::BadMagic`] when the magic header is
    /// missing or wrong.
    pub fn from_wire_capture(capture: Bytes) -> Result<LogStream<'static>, DecodeError> {
        if capture.len() < CAPTURE_MAGIC.len() || &capture[..8] != CAPTURE_MAGIC {
            return Err(DecodeError::BadMagic);
        }
        Ok(LogStream {
            source: StreamSource::WireShared {
                buf: capture,
                pos: CAPTURE_MAGIC.len(),
            },
            stats: StreamStats::default(),
        })
    }
}

/// True for the fifteen message type codes OpenFlow 1.0 defines and this
/// crate decodes (the resync scan uses this to tell a frame boundary
/// from payload bytes).
fn is_known_type_code(code: u8) -> bool {
    matches!(code, 0..=3 | 5 | 6 | 10..=14 | 16..=19)
}

/// Checks whether `buf[pos..]` starts with a *plausible* frame: a valid
/// direction byte followed by an OpenFlow header with the right version,
/// a known type code, and a claimed length that fits within the capture.
/// Used only for resynchronization; the real decoder still validates the
/// body.
fn plausible_frame_at(buf: &[u8], pos: usize) -> bool {
    if buf.len() - pos < MIN_FRAME_LEN {
        return false;
    }
    let of = pos + PREAMBLE_LEN;
    let claimed = u16::from_be_bytes([buf[of + 2], buf[of + 3]]) as usize;
    buf[pos + PREAMBLE_LEN - 1] <= 1
        && buf[of] == openflow::wire::OFP_VERSION
        && is_known_type_code(buf[of + 1])
        && claimed >= openflow::wire::HEADER_LEN
        && of + claimed <= buf.len()
}

/// Scans forward from `from` for the next plausible frame boundary,
/// returning the end of the buffer when none remains.
fn resync(buf: &[u8], from: usize) -> usize {
    let mut pos = from;
    while pos < buf.len() {
        if plausible_frame_at(buf, pos) {
            return pos;
        }
        pos += 1;
    }
    buf.len()
}

/// Reads a big-endian `u64` at `at`, or `None` when fewer than eight
/// bytes remain.
fn read_u64_be(buf: &[u8], at: usize) -> Option<u64> {
    let bytes: [u8; 8] = buf.get(at..at + 8)?.try_into().ok()?;
    Some(u64::from_be_bytes(bytes))
}

/// Validates the `[ts][dpid][direction]` preamble and the embedded
/// OpenFlow header of the frame at absolute offset `pos`, classifying
/// framing damage precisely (truncation, bad tag, length overflow).
/// Returns the preamble fields; the message body is left to the codec.
fn validate_frame_at(
    buf: &[u8],
    pos: usize,
) -> Result<(Timestamp, DatapathId, Direction), DecodeError> {
    let rest = &buf[pos..];
    if rest.len() < MIN_FRAME_LEN {
        return Err(DecodeError::TruncatedFrame {
            offset: pos,
            available: rest.len(),
        });
    }
    // Checked reads: the guard above covers these, but a short frame
    // must never be able to slice out of bounds even if the guard and
    // the preamble layout drift apart.
    let (Some(ts), Some(dpid)) = (read_u64_be(rest, 0), read_u64_be(rest, 8)) else {
        return Err(DecodeError::TruncatedFrame {
            offset: pos,
            available: rest.len(),
        });
    };
    let direction = match rest[16] {
        0 => Direction::ToController,
        1 => Direction::FromController,
        other => {
            return Err(DecodeError::BadEventTag {
                offset: pos,
                field: "capture.direction",
                value: other as u64,
            })
        }
    };
    let of = &rest[PREAMBLE_LEN..];
    if of[0] != openflow::wire::OFP_VERSION {
        return Err(DecodeError::BadEventTag {
            offset: pos,
            field: "openflow.version",
            value: of[0] as u64,
        });
    }
    if !is_known_type_code(of[1]) {
        return Err(DecodeError::BadEventTag {
            offset: pos,
            field: "openflow.type",
            value: of[1] as u64,
        });
    }
    let claimed = u16::from_be_bytes([of[2], of[3]]) as usize;
    if claimed < openflow::wire::HEADER_LEN || claimed > of.len() {
        return Err(DecodeError::LengthOverflow {
            offset: pos,
            claimed,
            available: of.len(),
        });
    }
    Ok((Timestamp::from_micros(ts), DatapathId(dpid), direction))
}

/// Decodes one `[ts][dpid][direction][wire message]` frame at absolute
/// offset `pos`, returning the event and the offset just past it.
fn decode_event_at(buf: &[u8], pos: usize) -> Result<(ControlEvent, usize), DecodeError> {
    let (ts, dpid, direction) = validate_frame_at(buf, pos)?;
    let (msg, xid, used) =
        openflow::wire::decode(&buf[pos + PREAMBLE_LEN..]).map_err(|source| {
            DecodeError::BadMessage {
                offset: pos,
                source,
            }
        })?;
    Ok((
        ControlEvent {
            ts,
            dpid,
            direction,
            xid,
            msg,
        },
        pos + PREAMBLE_LEN + used,
    ))
}

/// [`decode_event_at`] over a shared buffer: the message decode goes
/// through [`openflow::wire::decode_shared`], so payloads come out as
/// zero-copy slices of `buf`.
fn decode_event_shared_at(buf: &Bytes, pos: usize) -> Result<(ControlEvent, usize), DecodeError> {
    let (ts, dpid, direction) = validate_frame_at(buf, pos)?;
    let (msg, xid, used) =
        openflow::wire::decode_shared(buf, pos + PREAMBLE_LEN).map_err(|source| {
            DecodeError::BadMessage {
                offset: pos,
                source,
            }
        })?;
    Ok((
        ControlEvent {
            ts,
            dpid,
            direction,
            xid,
            msg,
        },
        pos + PREAMBLE_LEN + used,
    ))
}

impl<'a> Iterator for LogStream<'a> {
    type Item = Result<std::borrow::Cow<'a, ControlEvent>, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.source {
            StreamSource::Memory(iter) => {
                let ev = iter.next()?;
                self.stats.frames_decoded += 1;
                Some(Ok(std::borrow::Cow::Borrowed(ev)))
            }
            StreamSource::Wire { buf, pos } => {
                if *pos >= buf.len() {
                    return None;
                }
                match decode_event_at(buf, *pos) {
                    Ok((ev, next_pos)) => {
                        *pos = next_pos;
                        self.stats.frames_decoded += 1;
                        Some(Ok(std::borrow::Cow::Owned(ev)))
                    }
                    Err(e) => {
                        // Lost the framing: skip to the next plausible
                        // frame boundary and surface one error for the
                        // whole damaged region.
                        let next_pos = resync(buf, *pos + 1);
                        self.stats.frames_skipped += 1;
                        self.stats.bytes_skipped += (next_pos - *pos) as u64;
                        *pos = next_pos;
                        Some(Err(e))
                    }
                }
            }
            StreamSource::WireShared { buf, pos } => {
                if *pos >= buf.len() {
                    return None;
                }
                match decode_event_shared_at(buf, *pos) {
                    Ok((ev, next_pos)) => {
                        *pos = next_pos;
                        self.stats.frames_decoded += 1;
                        Some(Ok(std::borrow::Cow::Owned(ev)))
                    }
                    Err(e) => {
                        let next_pos = resync(buf, *pos + 1);
                        self.stats.frames_skipped += 1;
                        self.stats.bytes_skipped += (next_pos - *pos) as u64;
                        *pos = next_pos;
                        Some(Err(e))
                    }
                }
            }
        }
    }
}

/// Translates a relative-offset decode error to absolute capture
/// coordinates (the incremental decoder works on a compacted window).
fn shift_offset(err: DecodeError, by: usize) -> DecodeError {
    match err {
        DecodeError::BadMagic => DecodeError::BadMagic,
        DecodeError::TruncatedFrame { offset, available } => DecodeError::TruncatedFrame {
            offset: offset + by,
            available,
        },
        DecodeError::BadEventTag {
            offset,
            field,
            value,
        } => DecodeError::BadEventTag {
            offset: offset + by,
            field,
            value,
        },
        DecodeError::LengthOverflow {
            offset,
            claimed,
            available,
        } => DecodeError::LengthOverflow {
            offset: offset + by,
            claimed,
            available,
        },
        DecodeError::BadMessage { offset, source } => DecodeError::BadMessage {
            offset: offset + by,
            source,
        },
    }
}

/// Where an incremental decode stands between chunks.
#[derive(Debug)]
enum DecoderState {
    /// Waiting for the 8-byte `FDIFFCAP` magic header.
    Magic,
    /// Expecting a frame at the window start.
    Frame,
    /// Lost the framing at `err_at`: scanning from `scan` for the next
    /// plausible frame boundary before surfacing `err`, exactly like
    /// [`resync`] but resumable mid-scan.
    Resync {
        err: DecodeError,
        err_at: usize,
        scan: usize,
    },
    /// Rejected (bad magic) or fully drained after end-of-stream.
    Done,
}

/// An incremental `FDIFFCAP` decoder for byte streams that arrive in
/// arbitrary chunks — a TCP connection, a pipe — instead of as one
/// buffer.
///
/// Feed chunks with [`push`](FrameDecoder::push) and signal
/// end-of-stream with [`finish`](FrameDecoder::finish): the decoder
/// emits the **same event sequence, error sites, and
/// [`StreamStats`]** that a [`LogStream`] over the complete capture
/// would produce, regardless of how the bytes were chunked. That
/// equivalence is what lets a socket ingest path reuse every batch-mode
/// robustness guarantee (resynchronization, typed [`DecodeError`]s,
/// exact skip accounting) without a second decoder implementation.
///
/// Two windows of divergence are inherent to not knowing the stream
/// length up front, and both are confined to *fields of error values*,
/// never to events, error ordering, or counters: a
/// [`DecodeError::LengthOverflow`] reported before end-of-stream
/// carries the bytes available *at the decode attempt* in `available`
/// (batch mode reports the bytes to the end of the capture), and an
/// incomplete trailing frame is held back until `finish` because more
/// bytes could still complete it.
///
/// Memory is bounded: the window holds at most one pending frame (a
/// claimed OpenFlow length is a `u16`, so ≤ [`CAPTURE_MAGIC`]-header +
/// preamble + 64 KiB) plus one read chunk; consumed and skipped bytes
/// are compacted away as soon as their fate is decided.
#[derive(Debug)]
pub struct FrameDecoder {
    /// Unconsumed bytes; `buf[0]` sits at absolute offset `base`.
    buf: Vec<u8>,
    base: usize,
    state: DecoderState,
    stats: StreamStats,
    eof: bool,
}

impl Default for FrameDecoder {
    fn default() -> FrameDecoder {
        FrameDecoder::new()
    }
}

impl FrameDecoder {
    /// A decoder expecting a fresh capture stream (magic header first).
    pub fn new() -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            base: 0,
            state: DecoderState::Magic,
            stats: StreamStats::default(),
            eof: false,
        }
    }

    /// Frame-level counters for the bytes consumed so far; equals the
    /// batch [`LogStream::stats`] once the stream is finished.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Bytes currently buffered awaiting a decodable boundary (at most
    /// one frame plus one chunk — see the type docs).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// True once the stream was rejected (bad magic) or fully drained
    /// after [`finish`](FrameDecoder::finish).
    pub fn is_done(&self) -> bool {
        matches!(self.state, DecoderState::Done)
    }

    /// Feeds one chunk, appending every newly determinable event or
    /// error to `out` in stream order.
    ///
    /// # Panics
    ///
    /// Panics if called after [`finish`](FrameDecoder::finish).
    pub fn push(&mut self, chunk: &[u8], out: &mut Vec<Result<ControlEvent, DecodeError>>) {
        assert!(!self.eof, "push after finish");
        self.buf.extend_from_slice(chunk);
        self.drain(out);
    }

    /// Signals end-of-stream and drains everything still pending (the
    /// held-back trailing frame, an unfinished resync scan).
    pub fn finish(&mut self, out: &mut Vec<Result<ControlEvent, DecodeError>>) {
        self.eof = true;
        self.drain(out);
    }

    /// Drops the window prefix up to absolute offset `to`.
    fn consume_to(&mut self, to: usize) {
        self.buf.drain(..to - self.base);
        self.base = to;
    }

    fn drain(&mut self, out: &mut Vec<Result<ControlEvent, DecodeError>>) {
        loop {
            match std::mem::replace(&mut self.state, DecoderState::Done) {
                DecoderState::Done => return,
                DecoderState::Magic => {
                    if self.buf.len() >= CAPTURE_MAGIC.len() {
                        if &self.buf[..CAPTURE_MAGIC.len()] == CAPTURE_MAGIC {
                            self.consume_to(CAPTURE_MAGIC.len());
                            self.state = DecoderState::Frame;
                        } else {
                            out.push(Err(DecodeError::BadMagic));
                            return;
                        }
                    } else if self.eof {
                        out.push(Err(DecodeError::BadMagic));
                        return;
                    } else {
                        self.state = DecoderState::Magic;
                        return;
                    }
                }
                DecoderState::Frame => {
                    if !self.step_frame(out) {
                        return;
                    }
                }
                DecoderState::Resync { err, err_at, scan } => {
                    if !self.step_resync(err, err_at, scan, out) {
                        return;
                    }
                }
            }
        }
    }

    /// One attempt to decode the frame at the window start. Returns
    /// whether the drain loop should keep going (`self.state` is set
    /// either way; `false` means "need more bytes" or end-of-stream).
    fn step_frame(&mut self, out: &mut Vec<Result<ControlEvent, DecodeError>>) -> bool {
        let avail = self.buf.len();
        if avail == 0 {
            if !self.eof {
                self.state = DecoderState::Frame;
            }
            return false;
        }
        if avail < MIN_FRAME_LEN {
            if !self.eof {
                self.state = DecoderState::Frame;
                return false;
            }
            // The tail cannot hold a frame: classify it exactly as the
            // batch decoder does, then let the resync scan account it.
            self.begin_resync(DecodeError::TruncatedFrame {
                offset: self.base,
                available: avail,
            });
            return true;
        }
        // Tag and length-sanity checks that need only the fixed-size
        // prefix — mirrored from `validate_frame_at`, in the same
        // order, so the error variant at each site matches batch mode.
        let direction = self.buf[PREAMBLE_LEN - 1];
        let version = self.buf[PREAMBLE_LEN];
        let type_code = self.buf[PREAMBLE_LEN + 1];
        let claimed =
            u16::from_be_bytes([self.buf[PREAMBLE_LEN + 2], self.buf[PREAMBLE_LEN + 3]]) as usize;
        let tag_error = if direction > 1 {
            Some(DecodeError::BadEventTag {
                offset: self.base,
                field: "capture.direction",
                value: direction as u64,
            })
        } else if version != openflow::wire::OFP_VERSION {
            Some(DecodeError::BadEventTag {
                offset: self.base,
                field: "openflow.version",
                value: version as u64,
            })
        } else if !is_known_type_code(type_code) {
            Some(DecodeError::BadEventTag {
                offset: self.base,
                field: "openflow.type",
                value: type_code as u64,
            })
        } else if claimed < openflow::wire::HEADER_LEN {
            Some(DecodeError::LengthOverflow {
                offset: self.base,
                claimed,
                available: avail - PREAMBLE_LEN,
            })
        } else {
            None
        };
        if let Some(err) = tag_error {
            self.begin_resync(err);
            return true;
        }
        if PREAMBLE_LEN + claimed > avail {
            if !self.eof {
                // The claimed length is plausible; wait for the frame
                // to finish buffering.
                self.state = DecoderState::Frame;
                return false;
            }
            self.begin_resync(DecodeError::LengthOverflow {
                offset: self.base,
                claimed,
                available: avail - PREAMBLE_LEN,
            });
            return true;
        }
        match decode_event_at(&self.buf, 0) {
            Ok((ev, used)) => {
                self.stats.frames_decoded += 1;
                let next = self.base + used;
                self.consume_to(next);
                out.push(Ok(ev));
                self.state = DecoderState::Frame;
                true
            }
            Err(e) => {
                self.begin_resync(shift_offset(e, self.base));
                true
            }
        }
    }

    fn begin_resync(&mut self, err: DecodeError) {
        self.state = DecoderState::Resync {
            err_at: self.base,
            scan: self.base + 1,
            err,
        };
    }

    /// Resumable [`resync`]: advances `scan` until a plausible frame
    /// boundary fits the window, waiting (not skipping) at any
    /// candidate that more bytes could still complete, so the boundary
    /// found is the one the batch scan would find on the whole capture.
    fn step_resync(
        &mut self,
        err: DecodeError,
        err_at: usize,
        mut scan: usize,
        out: &mut Vec<Result<ControlEvent, DecodeError>>,
    ) -> bool {
        loop {
            // Skipped bytes are dead weight: compact them away so a
            // long corrupt region cannot grow the window.
            if scan > self.base {
                self.consume_to(scan);
            }
            let avail = self.buf.len();
            if avail < MIN_FRAME_LEN {
                if !self.eof {
                    self.state = DecoderState::Resync { err, err_at, scan };
                    return false;
                }
                // End of stream: nothing after `scan` can start a
                // frame, so the damaged region runs to the end.
                let end = self.base + avail;
                self.stats.frames_skipped += 1;
                self.stats.bytes_skipped += (end - err_at) as u64;
                self.consume_to(end);
                out.push(Err(err));
                self.state = DecoderState::Frame;
                return true;
            }
            let of = PREAMBLE_LEN;
            let claimed = u16::from_be_bytes([self.buf[of + 2], self.buf[of + 3]]) as usize;
            let locally_plausible = self.buf[PREAMBLE_LEN - 1] <= 1
                && self.buf[of] == openflow::wire::OFP_VERSION
                && is_known_type_code(self.buf[of + 1])
                && claimed >= openflow::wire::HEADER_LEN;
            if !locally_plausible {
                scan += 1;
                continue;
            }
            if PREAMBLE_LEN + claimed <= avail {
                // Found the boundary: surface the damage with exact
                // skip accounting and resume decoding here.
                self.stats.frames_skipped += 1;
                self.stats.bytes_skipped += (scan - err_at) as u64;
                out.push(Err(err));
                self.state = DecoderState::Frame;
                return true;
            }
            if self.eof {
                // The candidate's claimed length overruns the final
                // capture end — not plausible, same as the batch scan.
                scan += 1;
                continue;
            }
            self.state = DecoderState::Resync { err, err_at, scan };
            return false;
        }
    }
}

impl Extend<ControlEvent> for ControllerLog {
    fn extend<T: IntoIterator<Item = ControlEvent>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

impl FromIterator<ControlEvent> for ControllerLog {
    fn from_iter<T: IntoIterator<Item = ControlEvent>>(iter: T) -> Self {
        let mut log = ControllerLog::new();
        log.extend(iter);
        log.finish();
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::match_fields::OfMatch;
    use openflow::messages::FlowMod;

    fn ev(ts_us: u64, kind: u8) -> ControlEvent {
        let msg = match kind {
            0 => OfpMessage::Hello,
            1 => OfpMessage::FlowMod(FlowMod::add(OfMatch::any(), 1)),
            _ => OfpMessage::BarrierRequest,
        };
        ControlEvent {
            ts: Timestamp::from_micros(ts_us),
            dpid: DatapathId(1),
            direction: Direction::FromController,
            xid: Xid(0),
            msg,
        }
    }

    #[test]
    fn finish_sorts_by_time() {
        let mut log = ControllerLog::new();
        log.push(ev(30, 0));
        log.push(ev(10, 0));
        log.push(ev(20, 0));
        log.finish();
        let ts: Vec<u64> = log.events().iter().map(|e| e.ts.as_micros()).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn slice_is_half_open() {
        let log: ControllerLog = (0..10u64).map(|i| ev(i * 10, 0)).collect();
        let s = log.slice(Timestamp::from_micros(20), Timestamp::from_micros(50));
        let ts: Vec<u64> = s.events().iter().map(|e| e.ts.as_micros()).collect();
        assert_eq!(ts, vec![20, 30, 40]);
    }

    #[test]
    fn split_covers_all_events_without_duplication() {
        let log: ControllerLog = (0..100u64).map(|i| ev(i, 0)).collect();
        let parts = log.split(7);
        assert_eq!(parts.len(), 7);
        let total: usize = parts.iter().map(ControllerLog::len).sum();
        assert_eq!(total, 100);
        // segments are time-ordered and non-overlapping
        let mut last_end = 0;
        for p in &parts {
            if let Some((a, b)) = p.time_range() {
                assert!(a.as_micros() >= last_end);
                last_end = b.as_micros();
            }
        }
    }

    #[test]
    fn split_of_empty_log_yields_empty_segments() {
        let log = ControllerLog::new();
        let parts = log.split(3);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(ControllerLog::is_empty));
    }

    #[test]
    fn typed_iterators_filter_kinds() {
        let log: ControllerLog = vec![ev(0, 0), ev(1, 1), ev(2, 1), ev(3, 2)]
            .into_iter()
            .collect();
        assert_eq!(log.flow_mods().count(), 2);
        assert_eq!(log.packet_ins().count(), 0);
        assert_eq!(log.flow_removeds().count(), 0);
    }

    #[test]
    fn wire_capture_roundtrips() {
        let log: ControllerLog = vec![ev(5, 0), ev(10, 1), ev(15, 2), ev(20, 1)]
            .into_iter()
            .collect();
        let bytes = log.to_wire_bytes();
        let parsed = ControllerLog::from_wire_bytes(&bytes).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn wire_capture_rejects_garbage() {
        assert!(ControllerLog::from_wire_bytes(b"not a capture").is_err());
        let log: ControllerLog = vec![ev(5, 1)].into_iter().collect();
        let mut bytes = log.to_wire_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(ControllerLog::from_wire_bytes(&bytes).is_err());
    }

    #[test]
    fn empty_capture_roundtrips() {
        let log = ControllerLog::new();
        let parsed = ControllerLog::from_wire_bytes(&log.to_wire_bytes()).unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn memory_stream_yields_borrowed_events_in_order() {
        let log: ControllerLog = vec![ev(5, 0), ev(10, 1), ev(15, 2)].into_iter().collect();
        let streamed: Vec<ControlEvent> = log
            .stream()
            .map(|r| r.expect("memory stream never errors").into_owned())
            .collect();
        assert_eq!(streamed, log.events().to_vec());
    }

    #[test]
    fn wire_stream_decodes_lazily_and_matches_batch_parse() {
        let log: ControllerLog = vec![ev(5, 0), ev(10, 1), ev(15, 2), ev(20, 1)]
            .into_iter()
            .collect();
        let bytes = log.to_wire_bytes();
        let mut stream = LogStream::from_wire_bytes(&bytes).unwrap();
        // One event decodes without touching the rest of the buffer.
        let first = stream.next().unwrap().unwrap().into_owned();
        assert_eq!(first, log.events()[0]);
        let rest: Vec<ControlEvent> = stream.map(|r| r.unwrap().into_owned()).collect();
        assert_eq!(rest, log.events()[1..].to_vec());
    }

    #[test]
    fn wire_stream_reports_truncated_tail_then_ends() {
        let log: ControllerLog = vec![ev(5, 1), ev(10, 1)].into_iter().collect();
        let mut bytes = log.to_wire_bytes();
        bytes.truncate(bytes.len() - 3);
        let mut stream = LogStream::from_wire_bytes(&bytes).unwrap();
        assert!(stream.next().unwrap().is_ok(), "first event intact");
        let err = stream.next().unwrap().unwrap_err();
        assert!(
            matches!(err, DecodeError::LengthOverflow { .. }),
            "truncated FlowMod body reports a length overflow, got {err:?}"
        );
        assert!(stream.next().is_none(), "nothing decodable after the tail");
        let stats = stream.stats();
        assert_eq!(stats.frames_decoded, 1);
        assert_eq!(stats.frames_skipped, 1);
        assert!(stats.bytes_skipped > 0);
    }

    #[test]
    fn wire_stream_resynchronizes_past_corrupt_frame() {
        let log: ControllerLog = vec![ev(5, 1), ev(10, 1), ev(15, 2), ev(20, 0)]
            .into_iter()
            .collect();
        let mut bytes = log.to_wire_bytes();
        // Find where the second frame starts and stomp its OpenFlow
        // version byte so only that frame is damaged.
        let mut frame = Vec::new();
        encode_event(&log.events()[0], &mut frame);
        let second = CAPTURE_MAGIC.len() + frame.len();
        bytes[second + 17] = 0xEE;
        let mut stream = LogStream::from_wire_bytes(&bytes).unwrap();
        let mut ok = Vec::new();
        let mut errs = Vec::new();
        for item in stream.by_ref() {
            match item {
                Ok(e) => ok.push(e.into_owned()),
                Err(e) => errs.push(e),
            }
        }
        assert_eq!(
            ok,
            vec![
                log.events()[0].clone(),
                log.events()[2].clone(),
                log.events()[3].clone()
            ],
            "stream recovers every frame after the corrupt one"
        );
        assert_eq!(errs.len(), 1, "one error for the damaged region");
        assert!(matches!(
            errs[0],
            DecodeError::BadEventTag {
                field: "openflow.version",
                ..
            }
        ));
        assert_eq!(stream.stats().frames_decoded, 3);
        assert_eq!(stream.stats().frames_skipped, 1);
    }

    #[test]
    fn shared_stream_matches_borrowed_stream_with_resync() {
        use openflow::messages::{PacketIn, PacketInReason};
        use openflow::types::{BufferId, PortNo};
        let mut log: ControllerLog = vec![ev(5, 1), ev(10, 1), ev(15, 2), ev(20, 0)]
            .into_iter()
            .collect();
        log.push(ControlEvent {
            ts: Timestamp::from_micros(25),
            dpid: DatapathId(2),
            direction: Direction::ToController,
            xid: Xid(9),
            msg: OfpMessage::PacketIn(PacketIn {
                buffer_id: BufferId::NO_BUFFER,
                total_len: 6,
                in_port: PortNo(3),
                reason: PacketInReason::NoMatch,
                data: b"abcdef".to_vec().into(),
            }),
        });
        log.finish();
        let mut bytes = log.to_wire_bytes();
        // Damage the second frame's OpenFlow version byte so both
        // streams have to resynchronize mid-capture.
        let mut frame = Vec::new();
        encode_event(&log.events()[0], &mut frame);
        bytes[CAPTURE_MAGIC.len() + frame.len() + 17] = 0xEE;

        let mut borrowed = LogStream::from_wire_bytes(&bytes).unwrap();
        let borrowed_items: Vec<_> = borrowed.by_ref().collect();
        let mut shared = LogStream::from_wire_capture(Bytes::from(bytes.clone())).unwrap();
        let shared_items: Vec<_> = shared.by_ref().collect();

        assert_eq!(borrowed_items.len(), shared_items.len());
        for (b, s) in borrowed_items.iter().zip(&shared_items) {
            match (b, s) {
                (Ok(be), Ok(se)) => assert_eq!(be.as_ref(), se.as_ref()),
                (Err(be), Err(se)) => assert_eq!(format!("{be:?}"), format!("{se:?}")),
                other => panic!("streams disagree on ok/err: {other:?}"),
            }
        }
        assert_eq!(borrowed.stats(), shared.stats());
    }

    #[test]
    fn shared_stream_payloads_alias_the_capture_buffer() {
        use openflow::messages::{PacketIn, PacketInReason};
        use openflow::types::{BufferId, PortNo};
        let log: ControllerLog = vec![ControlEvent {
            ts: Timestamp::from_micros(1),
            dpid: DatapathId(1),
            direction: Direction::ToController,
            xid: Xid(1),
            msg: OfpMessage::PacketIn(PacketIn {
                buffer_id: BufferId::NO_BUFFER,
                total_len: 8,
                in_port: PortNo(1),
                reason: PacketInReason::NoMatch,
                data: b"payload!".to_vec().into(),
            }),
        }]
        .into_iter()
        .collect();
        let capture = Bytes::from(log.to_wire_bytes());
        let cap_lo = capture.as_ptr() as usize;
        let cap_hi = cap_lo + capture.len();
        let event = LogStream::from_wire_capture(capture.clone())
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .into_owned();
        let OfpMessage::PacketIn(pi) = &event.msg else {
            panic!("expected a PacketIn, got {:?}", event.msg);
        };
        assert_eq!(&*pi.data, b"payload!");
        let p = pi.data.as_ptr() as usize;
        assert!(
            p >= cap_lo && p + pi.data.len() <= cap_hi,
            "payload must be a view into the capture buffer, not a copy"
        );
    }

    #[test]
    fn wire_stream_classifies_bad_direction_byte() {
        let log: ControllerLog = vec![ev(5, 0), ev(10, 0)].into_iter().collect();
        let mut bytes = log.to_wire_bytes();
        bytes[CAPTURE_MAGIC.len() + 16] = 7;
        let stream = LogStream::from_wire_bytes(&bytes).unwrap();
        let errs: Vec<DecodeError> = stream.filter_map(Result::err).collect();
        assert_eq!(errs.len(), 1);
        assert!(matches!(
            errs[0],
            DecodeError::BadEventTag {
                field: "capture.direction",
                value: 7,
                ..
            }
        ));
    }

    #[test]
    fn wire_stream_rejects_bad_magic_up_front() {
        match LogStream::from_wire_bytes(b"not a capture") {
            Err(e) => assert_eq!(e, DecodeError::BadMagic),
            Ok(_) => panic!("bad magic must be rejected"),
        }
    }

    /// Drains `bytes` through a [`FrameDecoder`] in `chunk`-byte steps,
    /// returning the emitted items and the final stats.
    fn chunked_decode(
        bytes: &[u8],
        chunk: usize,
    ) -> (Vec<Result<ControlEvent, DecodeError>>, StreamStats) {
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for piece in bytes.chunks(chunk.max(1)) {
            if dec.is_done() {
                break;
            }
            dec.push(piece, &mut out);
        }
        if !dec.is_done() {
            dec.finish(&mut out);
        }
        (out, dec.stats())
    }

    /// Batch reference: the item and stats sequence of a [`LogStream`]
    /// over the whole buffer (bad magic becomes a single `Err` item to
    /// match the incremental decoder's shape).
    fn batch_decode(bytes: &[u8]) -> (Vec<Result<ControlEvent, DecodeError>>, StreamStats) {
        match LogStream::from_wire_bytes(bytes) {
            Ok(mut stream) => {
                let items = stream.by_ref().map(|r| r.map(Cow::into_owned)).collect();
                (items, stream.stats())
            }
            Err(e) => (vec![Err(e)], StreamStats::default()),
        }
    }

    /// Error equality up to the one documented divergence: a
    /// length-overflow's `available` field reflects the local window
    /// when reported before end-of-stream.
    fn errors_equivalent(a: &DecodeError, b: &DecodeError) -> bool {
        match (a, b) {
            (
                DecodeError::LengthOverflow {
                    offset: ao,
                    claimed: ac,
                    ..
                },
                DecodeError::LengthOverflow {
                    offset: bo,
                    claimed: bc,
                    ..
                },
            ) => ao == bo && ac == bc,
            _ => a == b,
        }
    }

    fn assert_chunked_matches_batch(bytes: &[u8], chunk: usize) {
        let (batch_items, batch_stats) = batch_decode(bytes);
        let (inc_items, inc_stats) = chunked_decode(bytes, chunk);
        assert_eq!(
            inc_items.len(),
            batch_items.len(),
            "item count, chunk size {chunk}"
        );
        for (i, (inc, batch)) in inc_items.iter().zip(&batch_items).enumerate() {
            match (inc, batch) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "event {i}, chunk size {chunk}"),
                (Err(a), Err(b)) => assert!(
                    errors_equivalent(a, b),
                    "error {i}, chunk size {chunk}: {a:?} vs {b:?}"
                ),
                other => panic!("item {i} disagrees on ok/err (chunk size {chunk}): {other:?}"),
            }
        }
        assert_eq!(inc_stats, batch_stats, "stats, chunk size {chunk}");
    }

    use std::borrow::Cow;

    #[test]
    fn frame_decoder_matches_batch_on_clean_capture_at_any_chunking() {
        let log: ControllerLog = vec![ev(5, 0), ev(10, 1), ev(15, 2), ev(20, 1)]
            .into_iter()
            .collect();
        let bytes = log.to_wire_bytes();
        for chunk in [1, 2, 3, 7, 16, 64, bytes.len()] {
            assert_chunked_matches_batch(&bytes, chunk);
        }
    }

    #[test]
    fn frame_decoder_matches_batch_through_resync() {
        let log: ControllerLog = vec![ev(5, 1), ev(10, 1), ev(15, 2), ev(20, 0), ev(25, 1)]
            .into_iter()
            .collect();
        let mut bytes = log.to_wire_bytes();
        // Stomp the second frame's OpenFlow version byte so every
        // chunking has to resynchronize mid-stream.
        let mut frame = Vec::new();
        encode_event(&log.events()[0], &mut frame);
        bytes[CAPTURE_MAGIC.len() + frame.len() + PREAMBLE_LEN] = 0xEE;
        for chunk in [1, 2, 3, 7, 16, 64, bytes.len()] {
            assert_chunked_matches_batch(&bytes, chunk);
        }
    }

    #[test]
    fn frame_decoder_matches_batch_on_truncated_tail() {
        let log: ControllerLog = vec![ev(5, 1), ev(10, 1)].into_iter().collect();
        let full = log.to_wire_bytes();
        for cut in 0..full.len() {
            for chunk in [1, 5, full.len().max(1)] {
                assert_chunked_matches_batch(&full[..cut], chunk);
            }
        }
    }

    #[test]
    fn frame_decoder_rejects_bad_magic_and_fuses() {
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        dec.push(b"not a capture at all", &mut out);
        assert_eq!(out, vec![Err(DecodeError::BadMagic)]);
        assert!(dec.is_done());
        // A short prefix only fails once the stream ends.
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        dec.push(b"FDIFF", &mut out);
        assert!(out.is_empty(), "a magic prefix may still complete");
        dec.finish(&mut out);
        assert_eq!(out, vec![Err(DecodeError::BadMagic)]);
    }

    #[test]
    fn frame_decoder_window_stays_bounded() {
        // 200 frames pushed in one call still compact down to nothing
        // once consumed; mid-frame pushes hold at most that frame.
        let log: ControllerLog = (0..200u64).map(|i| ev(i, 1)).collect();
        let bytes = log.to_wire_bytes();
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        dec.push(&bytes, &mut out);
        assert_eq!(dec.buffered(), 0, "fully decodable input leaves no tail");
        assert_eq!(out.len(), 200);
        let mut frame = Vec::new();
        encode_event(&log.events()[0], &mut frame);
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        dec.push(&bytes[..CAPTURE_MAGIC.len() + frame.len() + 5], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(dec.buffered(), 5, "only the partial frame is held");
    }

    #[test]
    fn time_range_reports_extremes() {
        let log: ControllerLog = vec![ev(5, 0), ev(95, 0)].into_iter().collect();
        assert_eq!(
            log.time_range(),
            Some((Timestamp::from_micros(5), Timestamp::from_micros(95)))
        );
        assert_eq!(ControllerLog::new().time_range(), None);
    }
}
