//! The controller-side control-traffic log.
//!
//! This is the *only* interface between the simulated data center and
//! FlowDiff: a time-ordered list of control messages as seen at the
//! controller, exactly what a passive tap on the OpenFlow control channel
//! would capture (Section III-A of the paper).

use openflow::messages::OfpMessage;
use openflow::types::{DatapathId, Timestamp, Xid};
use serde::{Deserialize, Serialize};

/// Which way a control message traveled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Switch-to-controller (e.g. `PacketIn`, `FlowRemoved`).
    ToController,
    /// Controller-to-switch (e.g. `FlowMod`, `PacketOut`).
    FromController,
}

/// One captured control message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlEvent {
    /// Controller-side capture timestamp: arrival time for
    /// switch-to-controller messages, send time for controller-to-switch
    /// messages (this is what Figure 3 of the paper assumes).
    pub ts: Timestamp,
    /// The switch this message came from or went to.
    pub dpid: DatapathId,
    /// Message direction.
    pub direction: Direction,
    /// Transaction id; replies echo the request's.
    pub xid: Xid,
    /// The message itself.
    pub msg: OfpMessage,
}

/// A time-ordered capture of control traffic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ControllerLog {
    events: Vec<ControlEvent>,
}

impl ControllerLog {
    /// Creates an empty log.
    pub fn new() -> ControllerLog {
        ControllerLog::default()
    }

    /// Appends an event.
    ///
    /// Events may be pushed slightly out of order by the simulator (it
    /// stamps send and receive times); call [`ControllerLog::finish`] once
    /// when the capture ends to restore time order.
    pub fn push(&mut self, ev: ControlEvent) {
        self.events.push(ev);
    }

    /// Sorts the capture by timestamp (stable, so simultaneous events keep
    /// their generation order).
    pub fn finish(&mut self) {
        self.events.sort_by_key(|e| e.ts);
    }

    /// All events in time order.
    pub fn events(&self) -> &[ControlEvent] {
        &self.events
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The capture's time span, if non-empty.
    pub fn time_range(&self) -> Option<(Timestamp, Timestamp)> {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => Some((a.ts, b.ts)),
            _ => None,
        }
    }

    /// Iterates over `PacketIn` events as `(ts, dpid, xid, &PacketIn)`.
    pub fn packet_ins(
        &self,
    ) -> impl Iterator<Item = (Timestamp, DatapathId, Xid, &openflow::messages::PacketIn)> + '_
    {
        self.events.iter().filter_map(|e| match &e.msg {
            OfpMessage::PacketIn(pi) => Some((e.ts, e.dpid, e.xid, pi)),
            _ => None,
        })
    }

    /// Iterates over `FlowRemoved` events as `(ts, dpid, &FlowRemoved)`.
    pub fn flow_removeds(
        &self,
    ) -> impl Iterator<Item = (Timestamp, DatapathId, &openflow::messages::FlowRemoved)> + '_ {
        self.events.iter().filter_map(|e| match &e.msg {
            OfpMessage::FlowRemoved(fr) => Some((e.ts, e.dpid, fr)),
            _ => None,
        })
    }

    /// Iterates over `FlowMod` events as `(ts, dpid, xid, &FlowMod)`.
    pub fn flow_mods(
        &self,
    ) -> impl Iterator<Item = (Timestamp, DatapathId, Xid, &openflow::messages::FlowMod)> + '_ {
        self.events.iter().filter_map(|e| match &e.msg {
            OfpMessage::FlowMod(fm) => Some((e.ts, e.dpid, e.xid, fm)),
            _ => None,
        })
    }

    /// Returns the sub-log with timestamps in `[from, to)`.
    pub fn slice(&self, from: Timestamp, to: Timestamp) -> ControllerLog {
        ControllerLog {
            events: self
                .events
                .iter()
                .filter(|e| e.ts >= from && e.ts < to)
                .cloned()
                .collect(),
        }
    }

    /// Splits the log into `n` equal-duration segments (used by FlowDiff's
    /// stability analysis).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn split(&self, n: usize) -> Vec<ControllerLog> {
        assert!(n > 0, "cannot split into zero segments");
        let Some((start, end)) = self.time_range() else {
            return vec![ControllerLog::new(); n];
        };
        let span = (end.as_micros() - start.as_micros()).max(1) + 1;
        let step = span.div_ceil(n as u64);
        let mut out = vec![ControllerLog::new(); n];
        for ev in &self.events {
            let idx = ((ev.ts.as_micros() - start.as_micros()) / step) as usize;
            out[idx.min(n - 1)].events.push(ev.clone());
        }
        out
    }
}

/// Magic bytes of the capture file format.
const CAPTURE_MAGIC: &[u8; 8] = b"FDIFFCAP";

impl ControllerLog {
    /// Serializes the capture to a self-contained binary format: a magic
    /// header followed by one record per event —
    /// `[ts: u64][dpid: u64][direction: u8][openflow wire message]` —
    /// with all integers big-endian and the message length taken from the
    /// OpenFlow header. Suitable for writing to disk and re-analyzing
    /// later.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 * self.events.len() + 8);
        out.extend_from_slice(CAPTURE_MAGIC);
        for ev in &self.events {
            out.extend_from_slice(&ev.ts.as_micros().to_be_bytes());
            out.extend_from_slice(&ev.dpid.0.to_be_bytes());
            out.push(match ev.direction {
                Direction::ToController => 0,
                Direction::FromController => 1,
            });
            out.extend_from_slice(&openflow::wire::encode(&ev.msg, ev.xid));
        }
        out
    }

    /// Parses a capture produced by [`ControllerLog::to_wire_bytes`] by
    /// draining a [`LogStream`] (the one decode implementation) into a
    /// fully materialized log.
    ///
    /// # Errors
    ///
    /// Returns a [`openflow::error::DecodeError`] on a bad magic header,
    /// truncation, or any malformed embedded message.
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<ControllerLog, openflow::error::DecodeError> {
        let mut log = ControllerLog::new();
        for ev in LogStream::from_wire_bytes(bytes)? {
            log.push(ev?.into_owned());
        }
        log.finish();
        Ok(log)
    }

    /// A pull-based stream over this log's events (no decoding, no
    /// copies).
    pub fn stream(&self) -> LogStream<'_> {
        LogStream::from_log(self)
    }
}

/// A pull-based event stream: the streaming counterpart of a fully
/// materialized [`ControllerLog`].
///
/// Two sources feed it: an in-memory log (borrowed events, zero copies)
/// or a wire capture, which is decoded *lazily* — one event per
/// [`Iterator::next`] call — so an arbitrarily large capture file can be
/// folded into flow records without ever materializing the whole log.
/// Events arrive in capture order, which is time order for any capture
/// written by [`ControllerLog::to_wire_bytes`] (the log sorts on
/// `finish`).
pub struct LogStream<'a> {
    source: StreamSource<'a>,
}

enum StreamSource<'a> {
    Memory(std::slice::Iter<'a, ControlEvent>),
    Wire {
        rest: &'a [u8],
        /// Poisoned after the first decode error: the framing is lost,
        /// so the stream fuses instead of emitting garbage events.
        failed: bool,
    },
}

impl<'a> LogStream<'a> {
    /// Streams a materialized log's events (borrowed, in log order).
    pub fn from_log(log: &'a ControllerLog) -> LogStream<'a> {
        LogStream {
            source: StreamSource::Memory(log.events.iter()),
        }
    }

    /// Streams a wire capture, validating the magic header up front and
    /// decoding one event per `next` call.
    ///
    /// # Errors
    ///
    /// Returns a [`openflow::error::DecodeError`] when the magic header
    /// is missing or wrong; per-event decode errors surface as `Err`
    /// items during iteration.
    pub fn from_wire_bytes(bytes: &'a [u8]) -> Result<LogStream<'a>, openflow::error::DecodeError> {
        if bytes.len() < CAPTURE_MAGIC.len() || &bytes[..8] != CAPTURE_MAGIC {
            return Err(openflow::error::DecodeError::BadField {
                context: "capture.magic",
                value: bytes.first().copied().unwrap_or(0) as u64,
            });
        }
        Ok(LogStream {
            source: StreamSource::Wire {
                rest: &bytes[8..],
                failed: false,
            },
        })
    }
}

/// Decodes one `[ts][dpid][direction][wire message]` record, returning
/// the event and the remaining bytes.
fn decode_event(rest: &[u8]) -> Result<(ControlEvent, &[u8]), openflow::error::DecodeError> {
    use openflow::error::DecodeError;
    if rest.len() < 17 {
        return Err(DecodeError::Truncated {
            needed: 17,
            available: rest.len(),
        });
    }
    let ts = u64::from_be_bytes(rest[0..8].try_into().expect("8 bytes"));
    let dpid = u64::from_be_bytes(rest[8..16].try_into().expect("8 bytes"));
    let direction = match rest[16] {
        0 => Direction::ToController,
        1 => Direction::FromController,
        other => {
            return Err(DecodeError::BadField {
                context: "capture.direction",
                value: other as u64,
            })
        }
    };
    let (msg, xid, used) = openflow::wire::decode(&rest[17..])?;
    Ok((
        ControlEvent {
            ts: Timestamp::from_micros(ts),
            dpid: DatapathId(dpid),
            direction,
            xid,
            msg,
        },
        &rest[17 + used..],
    ))
}

impl<'a> Iterator for LogStream<'a> {
    type Item = Result<std::borrow::Cow<'a, ControlEvent>, openflow::error::DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.source {
            StreamSource::Memory(iter) => iter.next().map(|e| Ok(std::borrow::Cow::Borrowed(e))),
            StreamSource::Wire { rest, failed } => {
                if *failed || rest.is_empty() {
                    return None;
                }
                match decode_event(rest) {
                    Ok((ev, remaining)) => {
                        *rest = remaining;
                        Some(Ok(std::borrow::Cow::Owned(ev)))
                    }
                    Err(e) => {
                        *failed = true;
                        Some(Err(e))
                    }
                }
            }
        }
    }
}

impl Extend<ControlEvent> for ControllerLog {
    fn extend<T: IntoIterator<Item = ControlEvent>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

impl FromIterator<ControlEvent> for ControllerLog {
    fn from_iter<T: IntoIterator<Item = ControlEvent>>(iter: T) -> Self {
        let mut log = ControllerLog::new();
        log.extend(iter);
        log.finish();
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::match_fields::OfMatch;
    use openflow::messages::FlowMod;

    fn ev(ts_us: u64, kind: u8) -> ControlEvent {
        let msg = match kind {
            0 => OfpMessage::Hello,
            1 => OfpMessage::FlowMod(FlowMod::add(OfMatch::any(), 1)),
            _ => OfpMessage::BarrierRequest,
        };
        ControlEvent {
            ts: Timestamp::from_micros(ts_us),
            dpid: DatapathId(1),
            direction: Direction::FromController,
            xid: Xid(0),
            msg,
        }
    }

    #[test]
    fn finish_sorts_by_time() {
        let mut log = ControllerLog::new();
        log.push(ev(30, 0));
        log.push(ev(10, 0));
        log.push(ev(20, 0));
        log.finish();
        let ts: Vec<u64> = log.events().iter().map(|e| e.ts.as_micros()).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn slice_is_half_open() {
        let log: ControllerLog = (0..10u64).map(|i| ev(i * 10, 0)).collect();
        let s = log.slice(Timestamp::from_micros(20), Timestamp::from_micros(50));
        let ts: Vec<u64> = s.events().iter().map(|e| e.ts.as_micros()).collect();
        assert_eq!(ts, vec![20, 30, 40]);
    }

    #[test]
    fn split_covers_all_events_without_duplication() {
        let log: ControllerLog = (0..100u64).map(|i| ev(i, 0)).collect();
        let parts = log.split(7);
        assert_eq!(parts.len(), 7);
        let total: usize = parts.iter().map(ControllerLog::len).sum();
        assert_eq!(total, 100);
        // segments are time-ordered and non-overlapping
        let mut last_end = 0;
        for p in &parts {
            if let Some((a, b)) = p.time_range() {
                assert!(a.as_micros() >= last_end);
                last_end = b.as_micros();
            }
        }
    }

    #[test]
    fn split_of_empty_log_yields_empty_segments() {
        let log = ControllerLog::new();
        let parts = log.split(3);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(ControllerLog::is_empty));
    }

    #[test]
    fn typed_iterators_filter_kinds() {
        let log: ControllerLog = vec![ev(0, 0), ev(1, 1), ev(2, 1), ev(3, 2)]
            .into_iter()
            .collect();
        assert_eq!(log.flow_mods().count(), 2);
        assert_eq!(log.packet_ins().count(), 0);
        assert_eq!(log.flow_removeds().count(), 0);
    }

    #[test]
    fn wire_capture_roundtrips() {
        let log: ControllerLog = vec![ev(5, 0), ev(10, 1), ev(15, 2), ev(20, 1)]
            .into_iter()
            .collect();
        let bytes = log.to_wire_bytes();
        let parsed = ControllerLog::from_wire_bytes(&bytes).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn wire_capture_rejects_garbage() {
        assert!(ControllerLog::from_wire_bytes(b"not a capture").is_err());
        let log: ControllerLog = vec![ev(5, 1)].into_iter().collect();
        let mut bytes = log.to_wire_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(ControllerLog::from_wire_bytes(&bytes).is_err());
    }

    #[test]
    fn empty_capture_roundtrips() {
        let log = ControllerLog::new();
        let parsed = ControllerLog::from_wire_bytes(&log.to_wire_bytes()).unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn memory_stream_yields_borrowed_events_in_order() {
        let log: ControllerLog = vec![ev(5, 0), ev(10, 1), ev(15, 2)].into_iter().collect();
        let streamed: Vec<ControlEvent> = log
            .stream()
            .map(|r| r.expect("memory stream never errors").into_owned())
            .collect();
        assert_eq!(streamed, log.events().to_vec());
    }

    #[test]
    fn wire_stream_decodes_lazily_and_matches_batch_parse() {
        let log: ControllerLog = vec![ev(5, 0), ev(10, 1), ev(15, 2), ev(20, 1)]
            .into_iter()
            .collect();
        let bytes = log.to_wire_bytes();
        let mut stream = LogStream::from_wire_bytes(&bytes).unwrap();
        // One event decodes without touching the rest of the buffer.
        let first = stream.next().unwrap().unwrap().into_owned();
        assert_eq!(first, log.events()[0]);
        let rest: Vec<ControlEvent> = stream.map(|r| r.unwrap().into_owned()).collect();
        assert_eq!(rest, log.events()[1..].to_vec());
    }

    #[test]
    fn wire_stream_fuses_after_decode_error() {
        let log: ControllerLog = vec![ev(5, 1), ev(10, 1)].into_iter().collect();
        let mut bytes = log.to_wire_bytes();
        bytes.truncate(bytes.len() - 3);
        let mut stream = LogStream::from_wire_bytes(&bytes).unwrap();
        assert!(stream.next().unwrap().is_ok(), "first event intact");
        assert!(stream.next().unwrap().is_err(), "second event truncated");
        assert!(stream.next().is_none(), "stream fuses after the error");
    }

    #[test]
    fn wire_stream_rejects_bad_magic_up_front() {
        assert!(LogStream::from_wire_bytes(b"not a capture").is_err());
    }

    #[test]
    fn time_range_reports_extremes() {
        let log: ControllerLog = vec![ev(5, 0), ev(95, 0)].into_iter().collect();
        assert_eq!(
            log.time_range(),
            Some((Timestamp::from_micros(5), Timestamp::from_micros(95)))
        );
        assert_eq!(ControllerLog::new().time_range(), None);
    }
}
