//! In-tree serialization facade.
//!
//! The build environment is offline, so the real serde crate is
//! unavailable; this crate provides the subset of its surface the
//! workspace uses — `Serialize`/`Deserialize` traits, the derive
//! macros (from the sibling `serde_derive` crate), and `to_vec` /
//! `from_slice` entry points — over a single compact binary format:
//!
//! * integers/floats: fixed-width little-endian (`f64` via `to_bits`)
//! * `bool`: one byte; `char`: `u32` scalar value
//! * sequences, maps, strings: `u64` element count, then elements
//! * `Option`: one-byte tag; enums: `u32` declaration-order tag
//! * structs/tuples/arrays: fields in declaration order, no framing
//!
//! The format is self-consistent (round-trips through `to_vec` →
//! `from_slice`) but deliberately schema-less: it is a model
//! cache/persistence format, not an interchange format.

// Let the `::serde::` paths in derive-generated code resolve when the
// derives are exercised inside this crate's own tests.
extern crate self as serde;

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;
use std::net::Ipv4Addr;

pub use serde_derive::{Deserialize, Serialize};

/// Decode error: truncated input, invalid tag, or malformed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.msg)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn serialize(&self, out: &mut Vec<u8>);
}

pub trait Deserialize: Sized {
    fn deserialize(input: &mut &[u8]) -> Result<Self, Error>;
}

/// Serialize a value to its binary encoding.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.serialize(&mut out);
    out
}

/// Deserialize a value from its binary encoding, requiring that the
/// whole input is consumed.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let mut input = bytes;
    let value = T::deserialize(&mut input)?;
    if !input.is_empty() {
        return Err(Error::custom(format!("{} trailing bytes", input.len())));
    }
    Ok(value)
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], Error> {
    if input.len() < n {
        return Err(Error::custom(format!(
            "unexpected end of input: need {n} bytes, have {}",
            input.len()
        )));
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

fn read_len(input: &mut &[u8]) -> Result<usize, Error> {
    let raw = u64::deserialize(input)?;
    usize::try_from(raw).map_err(|_| Error::custom("length overflows usize"))
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, out: &mut Vec<u8>) {
        (**self).serialize(out);
    }
}

macro_rules! impl_scalar {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Deserialize for $t {
            fn deserialize(input: &mut &[u8]) -> Result<Self, Error> {
                let bytes = take(input, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().unwrap()))
            }
        }
    )*};
}

impl_scalar!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl Serialize for usize {
    fn serialize(&self, out: &mut Vec<u8>) {
        (*self as u64).serialize(out);
    }
}

impl Deserialize for usize {
    fn deserialize(input: &mut &[u8]) -> Result<Self, Error> {
        let raw = u64::deserialize(input)?;
        usize::try_from(raw).map_err(|_| Error::custom("usize overflow"))
    }
}

impl Serialize for isize {
    fn serialize(&self, out: &mut Vec<u8>) {
        (*self as i64).serialize(out);
    }
}

impl Deserialize for isize {
    fn deserialize(input: &mut &[u8]) -> Result<Self, Error> {
        let raw = i64::deserialize(input)?;
        isize::try_from(raw).map_err(|_| Error::custom("isize overflow"))
    }
}

impl Serialize for f64 {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.to_bits().serialize(out);
    }
}

impl Deserialize for f64 {
    fn deserialize(input: &mut &[u8]) -> Result<Self, Error> {
        Ok(f64::from_bits(u64::deserialize(input)?))
    }
}

impl Serialize for f32 {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.to_bits().serialize(out);
    }
}

impl Deserialize for f32 {
    fn deserialize(input: &mut &[u8]) -> Result<Self, Error> {
        Ok(f32::from_bits(u32::deserialize(input)?))
    }
}

impl Serialize for bool {
    fn serialize(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}

impl Deserialize for bool {
    fn deserialize(input: &mut &[u8]) -> Result<Self, Error> {
        match u8::deserialize(input)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::custom(format!("invalid bool byte {other}"))),
        }
    }
}

impl Serialize for char {
    fn serialize(&self, out: &mut Vec<u8>) {
        (*self as u32).serialize(out);
    }
}

impl Deserialize for char {
    fn deserialize(input: &mut &[u8]) -> Result<Self, Error> {
        let raw = u32::deserialize(input)?;
        char::from_u32(raw).ok_or_else(|| Error::custom(format!("invalid char scalar {raw}")))
    }
}

impl Serialize for () {
    fn serialize(&self, _out: &mut Vec<u8>) {}
}

impl Deserialize for () {
    fn deserialize(_input: &mut &[u8]) -> Result<Self, Error> {
        Ok(())
    }
}

impl Serialize for str {
    fn serialize(&self, out: &mut Vec<u8>) {
        (self.len() as u64).serialize(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Serialize for String {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.as_str().serialize(out);
    }
}

impl Deserialize for String {
    fn deserialize(input: &mut &[u8]) -> Result<Self, Error> {
        let len = read_len(input)?;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::custom("invalid utf-8 string"))
    }
}

impl Serialize for Ipv4Addr {
    fn serialize(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.octets());
    }
}

impl Deserialize for Ipv4Addr {
    fn deserialize(input: &mut &[u8]) -> Result<Self, Error> {
        let bytes = take(input, 4)?;
        Ok(Ipv4Addr::new(bytes[0], bytes[1], bytes[2], bytes[3]))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.serialize(out);
            }
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(input: &mut &[u8]) -> Result<Self, Error> {
        match u8::deserialize(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(input)?)),
            other => Err(Error::custom(format!("invalid option tag {other}"))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        (**self).serialize(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(input: &mut &[u8]) -> Result<Self, Error> {
        Ok(Box::new(T::deserialize(input)?))
    }
}

fn serialize_seq<'a, T: Serialize + 'a>(
    len: usize,
    items: impl Iterator<Item = &'a T>,
    out: &mut Vec<u8>,
) {
    (len as u64).serialize(out);
    for item in items {
        item.serialize(out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        serialize_seq(self.len(), self.iter(), out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(input: &mut &[u8]) -> Result<Self, Error> {
        let len = read_len(input)?;
        let mut items = Vec::new();
        for _ in 0..len {
            items.push(T::deserialize(input)?);
        }
        Ok(items)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, out: &mut Vec<u8>) {
        serialize_seq(self.len(), self.iter(), out);
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        serialize_seq(self.len(), self.iter(), out);
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(input: &mut &[u8]) -> Result<Self, Error> {
        Ok(Vec::<T>::deserialize(input)?.into())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, out: &mut Vec<u8>) {
        for item in self {
            item.serialize(out);
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(input: &mut &[u8]) -> Result<Self, Error> {
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::deserialize(input)?);
        }
        items
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        serialize_seq(self.len(), self.iter(), out);
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(input: &mut &[u8]) -> Result<Self, Error> {
        let len = read_len(input)?;
        let mut set = BTreeSet::new();
        for _ in 0..len {
            set.insert(T::deserialize(input)?);
        }
        Ok(set)
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        serialize_seq(self.len(), self.iter(), out);
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize(input: &mut &[u8]) -> Result<Self, Error> {
        let len = read_len(input)?;
        let mut set = HashSet::with_capacity(len.min(4096));
        for _ in 0..len {
            set.insert(T::deserialize(input)?);
        }
        Ok(set)
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self, out: &mut Vec<u8>) {
        (self.len() as u64).serialize(out);
        for (k, v) in self {
            k.serialize(out);
            v.serialize(out);
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(input: &mut &[u8]) -> Result<Self, Error> {
        let len = read_len(input)?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let k = K::deserialize(input)?;
            let v = V::deserialize(input)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self, out: &mut Vec<u8>) {
        (self.len() as u64).serialize(out);
        for (k, v) in self {
            k.serialize(out);
            v.serialize(out);
        }
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(input: &mut &[u8]) -> Result<Self, Error> {
        let len = read_len(input)?;
        let mut map = HashMap::with_capacity(len.min(4096));
        for _ in 0..len {
            let k = K::deserialize(input)?;
            let v = V::deserialize(input)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self, out: &mut Vec<u8>) {
                $(self.$idx.serialize(out);)+
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(input: &mut &[u8]) -> Result<Self, Error> {
                Ok(($($name::deserialize(input)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Point {
        x: u32,
        y: f64,
        label: String,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Wrapper(u16);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Marker;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Empty,
        Circle(f64),
        Rect { w: u32, h: u32 },
    }

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_vec(&v);
        let back: T = from_slice(&bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(42u8);
        roundtrip(-7i64);
        roundtrip(3.5f64);
        roundtrip(true);
        roundtrip('λ');
        roundtrip(String::from("flow"));
        roundtrip(Ipv4Addr::new(10, 0, 0, 7));
        roundtrip(usize::MAX);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Option::<u8>::None);
        roundtrip(Some(vec![String::from("a"), String::from("b")]));
        roundtrip(BTreeMap::from([(1u8, 2u16), (3, 4)]));
        roundtrip(BTreeSet::from([5u64, 6, 7]));
        roundtrip(HashMap::from([(String::from("k"), 9i32)]));
        roundtrip([1u8, 2, 3]);
        roundtrip([[true, false]; 4]);
        roundtrip((1u8, String::from("x"), 2.5f64));
    }

    #[test]
    fn derived_shapes_roundtrip() {
        roundtrip(Point {
            x: 7,
            y: -0.5,
            label: String::from("p"),
        });
        roundtrip(Wrapper(99));
        roundtrip(Marker);
        roundtrip(Shape::Empty);
        roundtrip(Shape::Circle(2.25));
        roundtrip(Shape::Rect { w: 3, h: 4 });
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = to_vec(&vec![1u64, 2, 3]);
        assert!(from_slice::<Vec<u64>>(&bytes[..bytes.len() - 1]).is_err());
        assert!(from_slice::<Shape>(&[9, 0, 0, 0]).is_err());
    }

    #[test]
    fn trailing_bytes_error() {
        let mut bytes = to_vec(&7u8);
        bytes.push(0);
        assert!(from_slice::<u8>(&bytes).is_err());
    }
}
