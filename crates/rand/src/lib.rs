//! In-tree random number generation.
//!
//! The build environment is offline, so the real `rand` crate is
//! unavailable; this crate supplies the API subset the workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods `gen` / `gen_range` over integer ranges.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, with distribution quality good enough for the
//! simulator's Poisson/exponential sampling. Sequences differ from the
//! real rand's `StdRng` (ChaCha12), which is fine: the workspace only
//! relies on determinism and statistical uniformity, not on matching a
//! specific stream.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any `RngCore`, mirroring rand 0.8's `Rng`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be drawn from the "standard" distribution
/// (full-range integers, unit-interval floats, fair bools).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let x = rng.gen_range(3u64..=7);
            assert!((3..=7).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 7;
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let z = rng.gen_range(0usize..1);
            assert_eq!(z, 0);
        }
        assert!(seen_lo && seen_hi, "inclusive bounds never sampled");
    }
}
