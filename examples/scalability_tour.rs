//! Scalability tour: the 320-server tree simulation of Section V-C,
//! scaled down for a quick run. Prints the PacketIn rate and FlowDiff's
//! model-building time as the number of applications grows.
//!
//! Run with: `cargo run --release --example scalability_tour`

use std::net::Ipv4Addr;
use std::time::Instant;

use flowdiff::prelude::*;
use netsim::prelude::*;
use workloads::prelude::*;

/// Deploys `n_apps` randomly placed three-tier apps as ON/OFF meshes and
/// returns the captured log.
fn capture(topo: &Topology, n_apps: usize, seed: u64) -> ControllerLog {
    let hosts: Vec<Ipv4Addr> = topo.hosts().map(|(id, _)| topo.host_ip(id)).collect();
    let window = Timestamp::from_secs(20);
    let mut sc = Scenario::new(topo.clone(), seed, Timestamp::from_secs(1), window);

    for a in 0..n_apps {
        // 3 VMs per tier, placed round-robin across the rack hosts.
        let pick = |tier: usize, k: usize| hosts[(a * 9 + tier * 3 + k) % hosts.len()];
        let mut pairs = Vec::new();
        for tier in 0..2 {
            for i in 0..3 {
                for j in 0..3 {
                    let dport = if tier == 0 { 8080 } else { 3306 };
                    pairs.push((pick(tier, i), pick(tier + 1, j), dport));
                }
            }
        }
        sc.mesh(OnOffMesh {
            pairs,
            process: OnOffProcess::default(),
            reuse_prob: 0.6, // the paper's TCP connection-reuse probability
            bytes_per_flow: 30_000,
        });
    }
    sc.run().log
}

fn main() {
    // Full paper scale is tree(16, 20) = 320 servers; 8 racks keeps the
    // example fast while preserving the shape.
    let topo = Topology::tree(8, 10);
    println!(
        "topology: {} hosts, {} OpenFlow switches",
        topo.hosts().count(),
        topo.of_switches().count()
    );
    println!(
        "{:>6} {:>12} {:>14} {:>12}",
        "apps", "packet-ins", "rate (1/s)", "model (ms)"
    );

    let config = FlowDiffConfig::default();
    for n_apps in [1, 3, 5, 9, 13, 19] {
        let log = capture(&topo, n_apps, 42 + n_apps as u64);
        let packet_ins = log.packet_ins().count();
        let span = log
            .time_range()
            .map(|(a, b)| (b.as_secs_f64() - a.as_secs_f64()).max(1e-9))
            .unwrap_or(1.0);

        let t0 = Instant::now();
        let model = BehaviorModel::build(&log, &config);
        let elapsed = t0.elapsed();
        println!(
            "{:>6} {:>12} {:>14.0} {:>12.1}",
            n_apps,
            packet_ins,
            packet_ins as f64 / span,
            elapsed.as_secs_f64() * 1e3
        );
        drop(model);
    }
    println!("\nFlowDiff's processing time grows sub-linearly with load (Fig. 13b).");
}
