//! Quickstart: build a baseline model of a healthy data center, inject a
//! fault, and let FlowDiff explain what changed.
//!
//! Run with: `cargo run --example quickstart`

use flowdiff::prelude::*;
use netsim::prelude::*;
use workloads::prelude::*;

fn main() {
    // 1. The data center: the paper's lab testbed plus service nodes.
    let mut topo = Topology::lab();
    let (catalog, _) = install_services(&mut topo, "of7");
    let ip = |n: &str| topo.host_ip(topo.node_by_name(n).unwrap());
    let (client, web, app, db) = (ip("S25"), ip("S13"), ip("S4"), ip("S14"));

    // 2. A three-tier application under a steady Poisson workload.
    let build_scenario = |seed: u64| {
        let mut sc = Scenario::new(
            topo.clone(),
            seed,
            Timestamp::from_secs(1),
            Timestamp::from_secs(61),
        );
        sc.services(catalog.clone())
            .app(templates::three_tier(
                "webshop",
                vec![web],
                vec![app],
                vec![db],
                None,
            ))
            .client(ClientWorkload {
                client,
                entry_hosts: vec![web],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(10.0),
                request_bytes: 2_048,
            });
        sc
    };

    // 3. Capture the healthy baseline log L1 and model it.
    let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());
    let l1 = build_scenario(1).run().log;
    let baseline = BehaviorModel::build(&l1, &config);
    let stability = analyze(&l1, &baseline, &config);
    println!(
        "baseline: {} flows, {} application group(s), {} switch adjacencies",
        baseline.records.len(),
        baseline.groups.len(),
        baseline.topology.adjacencies.len()
    );

    // 4. Something goes wrong: the app server gets misconfigured with
    //    debug logging (Table I, problem #1) during the L2 capture.
    let app_node = topo.node_by_name("S4").unwrap();
    let mut sc2 = build_scenario(2);
    sc2.fault(
        Timestamp::from_secs(5),
        Fault::HostSlowdown {
            host: app_node,
            extra_us: 120_000,
        },
    );
    let l2 = sc2.run().log;
    let current = BehaviorModel::build(&l2, &config);

    // 5. Diff and diagnose.
    let diff = flowdiff::diff::compare(&baseline, &current, &stability, &config);
    let report = diagnose(&diff, &current, &[], &config);
    println!("\n{report}");

    assert!(
        !report.is_healthy(),
        "the injected slowdown must be detected"
    );
}
