//! Fault diagnosis tour: injects the operational problems of Table I one
//! by one and prints, for each, the signatures that changed and the
//! inferred problem class.
//!
//! Run with: `cargo run --example fault_diagnosis`

use std::collections::BTreeSet;

use flowdiff::prelude::*;
use netsim::prelude::*;
use workloads::prelude::*;

struct Lab {
    topo: Topology,
    catalog: ServiceCatalog,
    config: FlowDiffConfig,
}

impl Lab {
    fn new() -> Lab {
        let mut topo = Topology::lab();
        let (catalog, _) = install_services(&mut topo, "of7");
        let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());
        Lab {
            topo,
            catalog,
            config,
        }
    }

    fn ip(&self, n: &str) -> std::net::Ipv4Addr {
        self.topo.host_ip(self.topo.node_by_name(n).unwrap())
    }

    fn node(&self, n: &str) -> NodeId {
        self.topo.node_by_name(n).unwrap()
    }

    fn capture(&self, seed: u64, fault: Option<Fault>) -> ControllerLog {
        let mut sc = Scenario::new(
            self.topo.clone(),
            seed,
            Timestamp::from_secs(1),
            Timestamp::from_secs(61),
        );
        sc.services(self.catalog.clone())
            .app(templates::three_tier(
                "webshop",
                vec![self.ip("S13")],
                vec![self.ip("S4")],
                vec![self.ip("S14")],
                None,
            ))
            .client(ClientWorkload {
                client: self.ip("S25"),
                entry_hosts: vec![self.ip("S13")],
                entry_port: 80,
                process: ArrivalProcess::poisson_per_sec(10.0),
                request_bytes: 2_048,
            });
        if let Some(f) = fault {
            sc.fault(Timestamp::ZERO, f);
        }
        sc.run().log
    }
}

fn main() {
    let lab = Lab::new();

    // Baseline model from a healthy capture.
    let l1 = lab.capture(1, None);
    let baseline = BehaviorModel::build(&l1, &lab.config);
    let stability = analyze(&l1, &baseline, &lab.config);

    let backbone = lab
        .topo
        .link_between(lab.node("of1"), lab.node("of7"))
        .unwrap();
    let faults: Vec<(&str, Fault)> = vec![
        (
            "#1 misconfigured INFO logging on the app server",
            Fault::HostSlowdown {
                host: lab.node("S4"),
                extra_us: 120_000,
            },
        ),
        (
            "#2 packet loss on the web-app path (tc)",
            Fault::LinkLoss {
                link: backbone,
                rate: 0.05,
            },
        ),
        (
            "#4 application crash on the app server",
            Fault::AppCrash {
                host: lab.node("S4"),
                port: 8080,
            },
        ),
        (
            "#5 host shutdown (database server)",
            Fault::HostDown {
                host: lab.node("S14"),
            },
        ),
        (
            "#6 firewall blocks the database port",
            Fault::PortBlock {
                host: lab.node("S14"),
                port: 3306,
            },
        ),
        (
            "controller overload",
            Fault::ControllerOverload { factor: 40.0 },
        ),
    ];

    for (i, (label, fault)) in faults.into_iter().enumerate() {
        let l2 = lab.capture(100 + i as u64, Some(fault));
        let current = BehaviorModel::build(&l2, &lab.config);
        let diff = flowdiff::diff::compare(&baseline, &current, &stability, &lab.config);
        let report = diagnose(&diff, &current, &[], &lab.config);

        let impacted: BTreeSet<&str> = report.unknown.iter().map(|c| c.kind.name()).collect();
        println!("== {label}");
        println!(
            "   impacted signatures: {}",
            impacted.into_iter().collect::<Vec<_>>().join(", ")
        );
        for p in &report.problems {
            println!("   inference: {p}");
        }
        if let Some((comp, n)) = report.ranking.first() {
            println!("   top suspect: {comp} ({n} changes)");
        }
        println!();
    }
}
