//! Task detection: learns automata for VM startup (per image) and VM
//! migration from training runs, then detects those tasks inside a noisy
//! production log — the paper's EC2 experiment, in simulation.
//!
//! Run with: `cargo run --example task_detection`

use flowdiff::prelude::*;
use netsim::prelude::*;
use workloads::prelude::*;

/// Captures the flow records of one isolated task run.
fn task_run(
    topo: &Topology,
    catalog: &ServiceCatalog,
    config: &FlowDiffConfig,
    task: TaskKind,
    seed: u64,
) -> Vec<FlowRecord> {
    let mut sc = Scenario::new(
        topo.clone(),
        seed,
        Timestamp::from_secs(1),
        Timestamp::from_secs(30),
    );
    sc.services(catalog.clone());
    sc.task(Timestamp::from_secs(2), task);
    let log = sc.run().log;
    extract_records(&log, config)
}

fn main() {
    let mut topo = Topology::lab();
    let (catalog, _) = install_services(&mut topo, "of7");
    let config = FlowDiffConfig::default().with_special_ips(catalog.special_ips());
    let ip = |n: &str| topo.host_ip(topo.node_by_name(n).unwrap());

    // 1. Learn automata from 20 training runs each.
    let mut library = TaskLibrary::new();
    let startup = |vm, image| TaskKind::VmStartup { vm, image };
    let training: Vec<(&str, TaskKind)> = vec![
        ("vm_startup_ubuntu", startup(ip("VM1"), VmImage::Ubuntu)),
        ("vm_startup_ami", startup(ip("VM2"), VmImage::AmazonAmi(0))),
        (
            "vm_migration",
            TaskKind::VmMigration {
                src_host: ip("S1"),
                dst_host: ip("S2"),
            },
        ),
    ];
    for (name, task) in &training {
        let runs: Vec<Vec<FlowRecord>> = (0..20)
            .map(|i| task_run(&topo, &catalog, &config, *task, 1000 + i))
            .collect();
        let automaton = learn_task(name, &runs, true, &config);
        println!(
            "learned {name}: {} states, {} start, {} final",
            automaton.state_count(),
            automaton.start_states().len(),
            automaton.final_states().len()
        );
        library.add(automaton);
    }

    // 2. A production log: background web traffic plus a Ubuntu startup
    //    on a *different* VM and a migration between *different* hosts —
    //    masked automata must still catch both.
    let mut sc = Scenario::new(
        topo.clone(),
        77,
        Timestamp::from_secs(1),
        Timestamp::from_secs(90),
    );
    sc.services(catalog.clone())
        .app(templates::two_tier("shop", vec![ip("S7")], vec![ip("S20")]))
        .client(ClientWorkload {
            client: ip("S23"),
            entry_hosts: vec![ip("S7")],
            entry_port: 80,
            process: ArrivalProcess::poisson_per_sec(5.0),
            request_bytes: 4_096,
        })
        // Boot two fresh VMs: individual startups can stall past the 1 s
        // interleaving bound (that is where Table III's missed detections
        // come from), so the example boots two and expects at least one hit.
        .task(
            Timestamp::from_secs(20),
            startup(ip("VM4"), VmImage::Ubuntu),
        )
        .task(
            Timestamp::from_secs(35),
            startup(ip("VM5"), VmImage::Ubuntu),
        )
        .task(
            Timestamp::from_secs(50),
            TaskKind::VmMigration {
                src_host: ip("S5"),
                dst_host: ip("S6"),
            },
        );
    let log = sc.run().log;
    let records = extract_records(&log, &config);
    println!(
        "\nproduction log: {} control events, {} flows",
        log.len(),
        records.len()
    );

    // 3. Detect.
    let events = library.detect(&records, &config);
    println!("detected task time series:");
    for e in &events {
        println!(
            "  {} @ [{} .. {}] involving {:?}",
            e.task, e.start, e.end, e.hosts
        );
    }
    assert!(
        events.iter().any(|e| e.task == "vm_startup_ubuntu"),
        "the Ubuntu startup must be detected"
    );
    assert!(
        events.iter().any(|e| e.task == "vm_migration"),
        "the migration must be detected"
    );
}
